"""Core VSA vector operations.

The binding primitive is circular convolution (paper Sec. II-A):

    ``C[n] = Σ_k A[k] · B[(n − k) mod d]``

and the unbinding primitive is circular correlation:

    ``C[n] = Σ_k A[k] · B[(n + k) mod d]``

(the paper's Fig. 3(b) worked example computes ``Σ_k A[k]·B[(k − n) mod d]``,
i.e. correlation with the roles swapped — identical hardware, see
DESIGN.md "Interpretation notes"). Both are implemented with FFTs for
O(d log d) host-side evaluation; the hardware simulator computes the same
results with the streaming schedule of Fig. 3(b).

All operations broadcast over leading axes, so a "blockwise" operation on
shape ``(blocks, block_dim)`` (NVSA block codes) and a batch of vectors of
shape ``(n, d)`` use the same functions.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..utils import make_rng

__all__ = [
    "circular_convolution",
    "circular_correlation",
    "bundle",
    "dot_similarity",
    "cosine_similarity",
    "permute_blocks",
    "random_vector",
    "unit_vector",
    "exact_circular_convolution",
    "exact_circular_correlation",
]


def _check_last_axis(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape[-1] != b.shape[-1]:
        raise ShapeError(
            f"operands disagree on vector dimension: {a.shape[-1]} vs {b.shape[-1]}"
        )


def circular_convolution(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bind two vectors: ``C[n] = Σ_k A[k]·B[(n−k) mod d]`` along the last axis.

    Commutative and associative (Sec. II-A); the identity element is the
    delta vector ``[1, 0, …, 0]``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    _check_last_axis(a, b)
    fa = np.fft.rfft(a, axis=-1)
    fb = np.fft.rfft(b, axis=-1)
    return np.fft.irfft(fa * fb, n=a.shape[-1], axis=-1)


def circular_correlation(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Unbind: ``C[n] = Σ_k A[k]·B[(n+k) mod d]`` along the last axis.

    For approximately unitary ``a``, ``circular_correlation(a,
    circular_convolution(a, b)) ≈ b``, which is the inverse-binding kernel
    (``nvsa.inv_binding_circular`` in Listing 1).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    _check_last_axis(a, b)
    fa = np.fft.rfft(a, axis=-1)
    fb = np.fft.rfft(b, axis=-1)
    return np.fft.irfft(np.conj(fa) * fb, n=a.shape[-1], axis=-1)


def exact_circular_convolution(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """O(d²) reference implementation of :func:`circular_convolution`.

    The oracle the FFT path is tested against (and the hardware
    simulator's golden model). Uses the shift identity
    ``C = Σ_k A[k] · roll(B, k)`` — ``roll(B, k)[n] = B[(n − k) mod d]``
    — so only the sum over ``k`` remains a Python loop; memory stays
    O(batch · d), unlike a full (d × d) gather matrix.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    _check_last_axis(a, b)
    d = a.shape[-1]
    out = np.zeros(np.broadcast_shapes(a.shape, b.shape), dtype=np.float64)
    for k in range(d):
        out += a[..., k, None] * np.roll(b, k, axis=-1)
    return out


def exact_circular_correlation(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """O(d²) reference implementation of :func:`circular_correlation`.

    Same shift identity as :func:`exact_circular_convolution` with the
    opposite roll direction: ``roll(B, −k)[n] = B[(n + k) mod d]`` (the
    unbinding kernel's sign flip).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    _check_last_axis(a, b)
    d = a.shape[-1]
    out = np.zeros(np.broadcast_shapes(a.shape, b.shape), dtype=np.float64)
    for k in range(d):
        out += a[..., k, None] * np.roll(b, -k, axis=-1)
    return out


def bundle(*vectors: np.ndarray) -> np.ndarray:
    """Superpose vectors element-wise (the VSA "+" operation)."""
    if not vectors:
        raise ShapeError("bundle needs at least one vector")
    out = np.asarray(vectors[0], dtype=np.float64).copy()
    for v in vectors[1:]:
        v = np.asarray(v, dtype=np.float64)
        if v.shape != out.shape:
            raise ShapeError(f"bundle shape mismatch: {out.shape} vs {v.shape}")
        out += v
    return out


def dot_similarity(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Inner product along the last axis (batched)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    _check_last_axis(a, b)
    return np.sum(a * b, axis=-1)


def cosine_similarity(a: np.ndarray, b: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Cosine similarity along the last axis (batched)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    _check_last_axis(a, b)
    num = np.sum(a * b, axis=-1)
    den = np.linalg.norm(a, axis=-1) * np.linalg.norm(b, axis=-1)
    return num / np.maximum(den, eps)


def permute_blocks(a: np.ndarray, shift: int = 1) -> np.ndarray:
    """Cyclically permute elements along the last axis (the VSA "ρ" operator).

    Permutation protects positional information when bundling sequences
    (used by the PGM-style row encodings in the datasets package).
    """
    a = np.asarray(a, dtype=np.float64)
    return np.roll(a, shift, axis=-1)


def random_vector(
    dim: int,
    *,
    blocks: int = 1,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Draw a random unit-RMS Gaussian vector of shape ``(blocks, dim)``.

    Gaussian vectors of dimension ``d`` have pairwise cosine similarity
    ``O(1/sqrt(d))``, giving the quasi-orthogonality VSAs rely on. With
    ``blocks == 1`` the leading axis is squeezed.
    """
    gen = make_rng(rng)
    v = gen.standard_normal((blocks, dim)) / np.sqrt(dim)
    return v[0] if blocks == 1 else v


def unit_vector(dim: int, *, blocks: int = 1) -> np.ndarray:
    """The binding identity: delta vector(s) ``[1, 0, …, 0]``."""
    v = np.zeros((blocks, dim), dtype=np.float64)
    v[:, 0] = 1.0
    return v[0] if blocks == 1 else v


def random_unitary_vector(
    dim: int,
    *,
    blocks: int = 1,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Draw a random *unitary* vector: unit-modulus spectrum, real entries.

    Unitary vectors make circular convolution exactly invertible
    (``circular_correlation(a, circular_convolution(a, b)) == b``) and keep
    all self-binding powers at unit norm — the property fractional-power
    value encodings rely on (see ``Codebook.fractional_power``).
    """
    gen = make_rng(rng)
    n_freq = dim // 2 + 1
    phases = gen.uniform(-np.pi, np.pi, size=(blocks, n_freq))
    # Real signals need real DC (and Nyquist, for even dims) components.
    phases[:, 0] = 0.0
    if dim % 2 == 0:
        phases[:, -1] = 0.0
    spectrum = np.exp(1j * phases)
    v = np.fft.irfft(spectrum, n=dim, axis=-1) * np.sqrt(dim)
    # Normalize to unit L2 norm (|spectrum| = 1 everywhere gives exactly 1).
    v /= np.maximum(np.linalg.norm(v, axis=-1, keepdims=True), 1e-12)
    return v[0] if blocks == 1 else v


def bind_power(base: np.ndarray, exponent: int) -> np.ndarray:
    """``exponent``-fold self-binding of ``base`` (``base^⊛k``).

    ``bind_power(g, 0)`` is the binding identity; negative exponents use
    the correlation inverse, exact for unitary ``base``.
    """
    base = np.asarray(base, dtype=np.float64)
    d = base.shape[-1]
    f = np.fft.rfft(base, axis=-1)
    if exponent >= 0:
        powered = f**exponent
    else:
        powered = np.conj(f) ** (-exponent)
    return np.fft.irfft(powered, n=d, axis=-1)
