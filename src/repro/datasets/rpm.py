"""Generator for 3×3 attribute-rule matrices (RPM-style problems).

A problem is a 3×3 grid of panels; each panel assigns a value to every
attribute; each attribute follows one row rule shared by all three rows
(RAVEN convention). The bottom-right panel is hidden and must be picked
from ``n_candidates`` alternatives.

Rule semantics over a row ``(a, b, c)`` of value indices:

* CONSTANT            ``a = b = c``
* PROGRESSION(step)   ``b = a + step``, ``c = b + step``
* ARITHMETIC(sign)    ``c = a + sign·b`` (values stay inside the range)
* DISTRIBUTE_THREE    ``{a, b, c}`` is a fixed 3-set, permuted per row

PGM-style *noise attributes* follow no rule at all (uniform per panel) and
must be ignored by a solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..utils import make_rng
from .spec import RpmAttribute, RpmDatasetSpec, RuleType

__all__ = ["RpmRule", "RpmPanel", "RpmProblem", "generate_problem", "generate_dataset"]


@dataclass(frozen=True)
class RpmRule:
    """An instantiated rule governing one attribute."""

    attribute: str
    rule_type: RuleType
    # PROGRESSION: step; ARITHMETIC: sign (+1/-1); DISTRIBUTE_THREE: 3-set.
    step: int = 0
    sign: int = 1
    value_set: tuple[int, ...] = ()


@dataclass(frozen=True)
class RpmPanel:
    """One panel: a value index per attribute (noise attributes included)."""

    values: dict[str, int]

    def value(self, attribute: str) -> int:
        return self.values[attribute]


@dataclass
class RpmProblem:
    """A complete RPM item: 8 context panels, candidates, ground truth."""

    spec: RpmDatasetSpec
    grid: list[list[RpmPanel]]          # 3 rows × 3 cols; grid[2][2] is the answer
    candidates: list[RpmPanel]
    answer_index: int
    rules: list[RpmRule]
    noise_attributes: tuple[RpmAttribute, ...] = field(default_factory=tuple)

    @property
    def context(self) -> list[RpmPanel]:
        """The eight visible panels in row-major order."""
        flat = [p for row in self.grid for p in row]
        return flat[:-1]

    @property
    def answer(self) -> RpmPanel:
        return self.candidates[self.answer_index]

    @property
    def all_attributes(self) -> list[RpmAttribute]:
        return list(self.spec.attributes) + list(self.noise_attributes)


def _sample_rule(
    attr: RpmAttribute, spec: RpmDatasetSpec, rng: np.random.Generator
) -> RpmRule:
    rule_type = spec.rule_types[int(rng.integers(len(spec.rule_types)))]
    if rule_type is RuleType.PROGRESSION:
        # Steps that keep a 3-term progression inside [0, n) for some start.
        feasible = [s for s in spec.progression_steps if 2 * abs(s) < attr.n_values]
        if not feasible:
            return RpmRule(attr.name, RuleType.CONSTANT)
        step = int(feasible[int(rng.integers(len(feasible)))])
        return RpmRule(attr.name, rule_type, step=step)
    if rule_type is RuleType.ARITHMETIC:
        sign = int(spec.arithmetic_signs[int(rng.integers(len(spec.arithmetic_signs)))])
        return RpmRule(attr.name, rule_type, sign=sign)
    if rule_type is RuleType.DISTRIBUTE_THREE:
        values = rng.choice(attr.n_values, size=3, replace=False)
        return RpmRule(attr.name, rule_type, value_set=tuple(int(v) for v in sorted(values)))
    return RpmRule(attr.name, RuleType.CONSTANT)


def _row_for_rule(
    rule: RpmRule, attr: RpmAttribute, rng: np.random.Generator
) -> tuple[int, int, int]:
    n = attr.n_values
    if rule.rule_type is RuleType.CONSTANT:
        a = int(rng.integers(n))
        return a, a, a
    if rule.rule_type is RuleType.PROGRESSION:
        lo = max(0, -2 * rule.step)
        hi = min(n, n - 2 * rule.step)
        a = int(rng.integers(lo, hi))
        return a, a + rule.step, a + 2 * rule.step
    if rule.rule_type is RuleType.ARITHMETIC:
        if rule.sign > 0:
            # c = a + b <= n-1; keep operands >= 1 so the rule is informative.
            a = int(rng.integers(1, n - 1))
            b = int(rng.integers(1, n - a))
            return a, b, a + b
        # c = a - b >= 0.
        a = int(rng.integers(1, n))
        b = int(rng.integers(1, a + 1))
        return a, b, a - b
    if rule.rule_type is RuleType.DISTRIBUTE_THREE:
        perm = rng.permutation(3)
        vs = rule.value_set
        return vs[perm[0]], vs[perm[1]], vs[perm[2]]
    raise ConfigError(f"unhandled rule type {rule.rule_type}")


def _make_noise_attributes(spec: RpmDatasetSpec) -> tuple[RpmAttribute, ...]:
    return tuple(
        RpmAttribute(f"noise_{i}", spec.noise_attribute_values)
        for i in range(spec.n_noise_attributes)
    )


def _distractors(
    answer: RpmPanel,
    attrs: list[RpmAttribute],
    spec: RpmDatasetSpec,
    rng: np.random.Generator,
) -> list[RpmPanel]:
    """Perturb the answer into ``n_candidates - 1`` unique wrong panels.

    RAVEN-style: perturb up to ``distractor_attributes`` attributes;
    I-RAVEN-style (``distractor_attributes == 1``): exactly one attribute
    differs, giving the unbiased candidate set of Hu et al.
    """
    rule_attrs = [a for a in attrs if not a.name.startswith("noise_")]
    seen = {tuple(sorted(answer.values.items()))}
    out: list[RpmPanel] = []
    guard = 0
    while len(out) < spec.n_candidates - 1:
        guard += 1
        if guard > 10_000:
            raise ConfigError(
                f"could not generate {spec.n_candidates - 1} unique distractors; "
                f"attribute space too small for spec {spec.name!r}"
            )
        n_perturb = int(rng.integers(1, spec.distractor_attributes + 1))
        chosen = rng.choice(len(rule_attrs), size=min(n_perturb, len(rule_attrs)), replace=False)
        values = dict(answer.values)
        for idx in chosen:
            attr = rule_attrs[int(idx)]
            alternatives = [v for v in range(attr.n_values) if v != answer.values[attr.name]]
            values[attr.name] = int(rng.choice(alternatives))
        key = tuple(sorted(values.items()))
        if key in seen:
            continue
        seen.add(key)
        out.append(RpmPanel(values))
    return out


def generate_problem(
    spec: RpmDatasetSpec, rng: np.random.Generator | int | None = None
) -> RpmProblem:
    """Generate one RPM problem according to ``spec``."""
    gen = make_rng(rng)
    noise_attrs = _make_noise_attributes(spec)
    rules = [_sample_rule(attr, spec, gen) for attr in spec.attributes]

    rows: list[list[dict[str, int]]] = [[{} for _ in range(3)] for _ in range(3)]
    for attr, rule in zip(spec.attributes, rules):
        for r in range(3):
            a, b, c = _row_for_rule(rule, attr, gen)
            rows[r][0][attr.name] = a
            rows[r][1][attr.name] = b
            rows[r][2][attr.name] = c
    for attr in noise_attrs:
        for r in range(3):
            for c in range(3):
                rows[r][c][attr.name] = int(gen.integers(attr.n_values))

    grid = [[RpmPanel(dict(cell)) for cell in row] for row in rows]
    answer = grid[2][2]
    all_attrs = list(spec.attributes) + list(noise_attrs)
    distractors = _distractors(answer, all_attrs, spec, gen)
    answer_index = int(gen.integers(spec.n_candidates))
    candidates = list(distractors)
    candidates.insert(answer_index, answer)
    return RpmProblem(
        spec=spec,
        grid=grid,
        candidates=candidates,
        answer_index=answer_index,
        rules=rules,
        noise_attributes=noise_attrs,
    )


def generate_dataset(
    spec: RpmDatasetSpec,
    n_problems: int,
    seed: int | None = 0,
) -> list[RpmProblem]:
    """Generate a reproducible list of problems (one child seed each)."""
    if n_problems < 0:
        raise ConfigError(f"n_problems must be >= 0, got {n_problems}")
    root = make_rng(seed)
    return [generate_problem(spec, root) for _ in range(n_problems)]
