"""CVR/SVRT-like relational classification items.

CVR (Zerroug et al. 2022) and SVRT (Fleuret et al. 2011) are visual tasks
whose label depends on a *relation* between objects (same/different,
inside/outside, symmetric arrangement). MIMONet is evaluated on them in the
paper's Fig. 5. For the runtime experiments only the input tensor shapes
and the symbolic post-processing matter, but we still generate genuinely
solvable items: small images containing two square "objects" whose relation
(same size / different size, aligned / not aligned) defines the label, so
MIMONet examples can demonstrate superposition classification end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..utils import make_rng

__all__ = ["RelationalItem", "generate_relational_dataset"]

#: Relation vocabulary; index = class label.
RELATIONS = ("same_size", "different_size")


@dataclass(frozen=True)
class RelationalItem:
    """One item: a single-channel image and its relation label."""

    image: np.ndarray          # (1, H, W) float in [0, 1]
    label: int                 # index into RELATIONS
    task: str                  # "cvr" or "svrt"


def _draw_square(img: np.ndarray, top: int, left: int, size: int) -> None:
    img[top : top + size, left : left + size] = 1.0


def _make_item(
    task: str, image_size: int, rng: np.random.Generator
) -> RelationalItem:
    img = np.zeros((image_size, image_size), dtype=np.float64)
    label = int(rng.integers(2))
    max_size = image_size // 4
    s1 = int(rng.integers(2, max_size))
    if label == 0:  # same size
        s2 = s1
    else:  # different size (force a visible gap)
        choices = [s for s in range(2, max_size) if abs(s - s1) >= 2]
        s2 = int(rng.choice(choices)) if choices else s1 + 2
    half = image_size // 2
    t1 = int(rng.integers(0, half - s1))
    l1 = int(rng.integers(0, image_size - s1))
    t2 = int(rng.integers(half, image_size - s2))
    l2 = int(rng.integers(0, image_size - s2))
    _draw_square(img, t1, l1, s1)
    _draw_square(img, t2, l2, s2)
    if task == "svrt":
        # SVRT items carry light clutter that perception must ignore.
        noise = rng.random((image_size, image_size)) < 0.01
        img = np.clip(img + noise * 0.5, 0.0, 1.0)
    return RelationalItem(image=img[None, :, :], label=label, task=task)


def generate_relational_dataset(
    task: str,
    n_items: int,
    image_size: int = 32,
    seed: int | None = 0,
) -> list[RelationalItem]:
    """Generate a reproducible CVR- or SVRT-like dataset."""
    task = task.lower()
    if task not in ("cvr", "svrt"):
        raise ConfigError(f"task must be 'cvr' or 'svrt', got {task!r}")
    if n_items < 0:
        raise ConfigError(f"n_items must be >= 0, got {n_items}")
    if image_size < 16:
        raise ConfigError(f"image_size must be >= 16, got {image_size}")
    rng = make_rng(seed)
    return [_make_item(task, image_size, rng) for _ in range(n_items)]
