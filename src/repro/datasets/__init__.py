"""Synthetic reasoning datasets with the task structure of the paper's suites.

The paper evaluates on RAVEN, I-RAVEN, PGM (Raven-progressive-matrix style
abstract reasoning) and CVR/SVRT (compositional visual reasoning). Those
datasets are large external artifacts; what the Table IV / Fig. 5
experiments actually exercise is the *task structure* — attribute panels
governed by row rules, candidate sets with distractors — so this package
generates problems with exactly that structure (see DESIGN.md,
substitution table).

* :mod:`~repro.datasets.rpm` — 3×3 attribute-rule matrices with
  constant / progression / arithmetic / distribute-three rules and
  RAVEN/I-RAVEN/PGM-flavoured difficulty presets;
* :mod:`~repro.datasets.cvr_svrt` — CVR/SVRT-like relational
  classification items used by the MIMONet examples.
"""

from .spec import RpmAttribute, RpmDatasetSpec, RuleType, make_spec
from .rpm import RpmPanel, RpmProblem, RpmRule, generate_problem, generate_dataset
from .cvr_svrt import RelationalItem, generate_relational_dataset

__all__ = [
    "RuleType",
    "RpmAttribute",
    "RpmDatasetSpec",
    "make_spec",
    "RpmRule",
    "RpmPanel",
    "RpmProblem",
    "generate_problem",
    "generate_dataset",
    "RelationalItem",
    "generate_relational_dataset",
]
