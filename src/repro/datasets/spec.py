"""Dataset specifications: attributes, rule vocabulary, difficulty presets.

The three RPM-style suites differ in attribute richness, rule vocabulary,
distractor construction and perceptual difficulty; the presets below encode
those differences so one generator (:mod:`repro.datasets.rpm`) serves all
three. Difficulty knobs were calibrated (see EXPERIMENTS.md) so the NVSA
solver's FP32 accuracy lands in the paper's Table IV bands: RAVEN ≈ 99 %,
I-RAVEN ≈ 99 %, PGM ≈ 69 %.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["RuleType", "RpmAttribute", "RpmDatasetSpec", "make_spec"]


class RuleType(enum.Enum):
    """Row-rule vocabulary of RPM-style tasks."""

    CONSTANT = "constant"
    PROGRESSION = "progression"  # value_{i+1} = value_i + step
    ARITHMETIC = "arithmetic"    # value_3 = value_1 ± value_2
    DISTRIBUTE_THREE = "distribute_three"  # a 3-set permuted across rows


@dataclass(frozen=True)
class RpmAttribute:
    """A panel attribute with a discrete ordered value space."""

    name: str
    n_values: int

    def __post_init__(self) -> None:
        if self.n_values < 3:
            raise ConfigError(
                f"attribute {self.name!r} needs >= 3 values for RPM rules, got {self.n_values}"
            )


@dataclass(frozen=True)
class RpmDatasetSpec:
    """Everything a generator and solver need to know about a suite.

    ``perception_noise`` is the std-dev of the logit noise the simulated
    perception frontend adds (see ``workloads.nvsa.PerceptionModel``);
    ``n_noise_attributes`` adds PGM-style unconstrained attributes that
    follow no rule and must be ignored; ``distractor_attributes`` controls
    how many attributes each distractor perturbs (1 = hardest).
    """

    name: str
    attributes: tuple[RpmAttribute, ...]
    rule_types: tuple[RuleType, ...]
    n_candidates: int = 8
    perception_noise: float = 0.1
    n_noise_attributes: int = 0
    distractor_attributes: int = 1
    progression_steps: tuple[int, ...] = (1, 2, -1, -2)
    arithmetic_signs: tuple[int, ...] = (1, -1)
    noise_attribute_values: int = 8

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ConfigError(f"spec {self.name!r} needs at least one attribute")
        if not self.rule_types:
            raise ConfigError(f"spec {self.name!r} needs at least one rule type")
        if self.n_candidates < 2:
            raise ConfigError(f"spec {self.name!r} needs >= 2 candidates")
        if self.perception_noise < 0:
            raise ConfigError("perception_noise must be >= 0")
        if self.distractor_attributes < 1:
            raise ConfigError("distractor_attributes must be >= 1")

    @property
    def n_attributes(self) -> int:
        return len(self.attributes)


_PRESETS: dict[str, RpmDatasetSpec] = {}


def _register(spec: RpmDatasetSpec) -> RpmDatasetSpec:
    _PRESETS[spec.name] = spec
    return spec


# RAVEN-like: four attributes, moderate value spaces, full rule vocabulary,
# distractors perturb 1-2 attributes, mild perception noise.
_register(
    RpmDatasetSpec(
        name="raven",
        attributes=(
            RpmAttribute("type", 5),
            RpmAttribute("size", 6),
            RpmAttribute("color", 8),
            RpmAttribute("number", 9),
        ),
        rule_types=(
            RuleType.CONSTANT,
            RuleType.PROGRESSION,
            RuleType.ARITHMETIC,
            RuleType.DISTRIBUTE_THREE,
        ),
        perception_noise=0.55,
        distractor_attributes=2,
    )
)

# I-RAVEN-like: identical panels, but the answer set is unbiased — every
# distractor differs from the answer in exactly one attribute, so
# context-blind strategies fail (Hu et al., AAAI 2021).
_register(
    RpmDatasetSpec(
        name="iraven",
        attributes=(
            RpmAttribute("type", 5),
            RpmAttribute("size", 6),
            RpmAttribute("color", 8),
            RpmAttribute("number", 9),
        ),
        rule_types=(
            RuleType.CONSTANT,
            RuleType.PROGRESSION,
            RuleType.ARITHMETIC,
            RuleType.DISTRIBUTE_THREE,
        ),
        perception_noise=0.55,
        distractor_attributes=1,
    )
)

# PGM-like: larger value spaces, distractor (rule-free) attributes, and a
# noisier perception channel — the combination that pushes even strong
# solvers to the paper's ~69 % band.
_register(
    RpmDatasetSpec(
        name="pgm",
        attributes=(
            RpmAttribute("shape_type", 7),
            RpmAttribute("shape_size", 10),
            RpmAttribute("shape_color", 10),
            RpmAttribute("line_type", 6),
            RpmAttribute("line_color", 10),
        ),
        rule_types=(
            RuleType.CONSTANT,
            RuleType.PROGRESSION,
            RuleType.ARITHMETIC,
            RuleType.DISTRIBUTE_THREE,
        ),
        perception_noise=1.30,
        n_noise_attributes=2,
        distractor_attributes=1,
    )
)


def make_spec(name: str) -> RpmDatasetSpec:
    """Look up a difficulty preset: ``raven``, ``iraven`` or ``pgm``."""
    try:
        return _PRESETS[name.lower()]
    except KeyError as exc:
        valid = ", ".join(sorted(_PRESETS))
        raise ConfigError(f"unknown dataset {name!r}; expected one of: {valid}") from exc
