"""Keyed memoization for the DSE's analytical-model sub-evaluations.

The parallel exploration engine (:mod:`repro.dse.engine`) evaluates the
same analytical sub-models — layer latency (Eq. 1), VSA node latency
(Eqs. 3-4), the memory plan, the SIMD width — for thousands of candidate
design points, and re-explores the same dataflow graph across benchmark
sweeps. This module puts those sub-evaluations behind explicit keyed
caches so repeated work is a dictionary hit, and so callers (tests,
benches) can observe hit/miss behavior via :func:`cache_stats`.

Two layers of memoization coexist:

* :func:`repro.model.runtime.layer_runtime` / ``vsa_node_runtime`` keep
  their ``functools.lru_cache`` — the innermost hot path stays C-fast;
* the :class:`EvalCache` wrappers here add *observable*, clearable,
  bounded caches keyed on value semantics (graph content, precision
  values), which the engine uses for whole-graph results (memory plan,
  SIMD width) that ``lru_cache`` cannot key on mutable graph objects.

``clear_model_caches()`` resets everything, including the ``lru_cache``
layers — benchmarks call it to time genuinely cold sweeps.

Two counter views coexist, for two different lifetimes:

* the **resettable** view (:func:`counters_snapshot` /
  :func:`fresh_evaluations_since`) zeroes with ``clear()`` — it is what
  one sweep uses to audit its own fresh work, and clearing between
  sweeps is part of its contract;
* the **cumulative** view (:func:`cumulative_snapshot` /
  :func:`delta_since`) is monotonic for the life of the process —
  ``clear_model_caches()`` folds the cleared counters into a running
  total instead of losing them. Long-lived processes (the ``repro
  serve`` warm server) account per-request hits/misses by diffing two
  cumulative snapshots, so they never need to clear caches between
  requests just to keep the books straight.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import ConfigError
from .batch import WorkloadArrays
from .memory import MemoryPlan, plan_memory, simd_width
from .runtime import layer_runtime, vsa_node_runtime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.dataflow import DataflowGraph
    from ..nn.gemm import GemmDims
    from ..quant import MixedPrecisionConfig
    from ..trace.opnode import VsaDims

__all__ = [
    "CacheStats",
    "EvalCache",
    "graph_cache_key",
    "cached_layer_runtime",
    "cached_vsa_node_runtime",
    "cached_plan_memory",
    "cached_simd_width",
    "cached_workload_arrays",
    "cache_stats",
    "counters_snapshot",
    "fresh_evaluations_since",
    "cumulative_snapshot",
    "delta_since",
    "clear_model_caches",
    "LAYER_RUNTIME_CACHE",
    "VSA_RUNTIME_CACHE",
    "MEMORY_PLAN_CACHE",
    "SIMD_WIDTH_CACHE",
    "WORKLOAD_ARRAYS_CACHE",
]


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of one cache's counters."""

    name: str
    hits: int
    misses: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class EvalCache:
    """A bounded, keyed memo table with hit/miss accounting.

    Keys must be hashable value tuples; eviction is FIFO (oldest insertion
    first), which is adequate for the DSE's mostly-monotone key streams.
    """

    def __init__(self, name: str, max_entries: int = 1 << 16):
        if max_entries < 1:
            raise ConfigError(f"max_entries must be >= 1, got {max_entries}")
        self.name = name
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        # Monotonic carry-over: counters folded in by clear(), so the
        # cumulative view survives cache resets (see cumulative_*).
        self._cleared_hits = 0
        self._cleared_misses = 0
        self._store: dict[Any, Any] = {}
        _REGISTRY[name] = self

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        try:
            value = self._store[key]
        except KeyError:
            self.misses += 1
            value = compute()
            if len(self._store) >= self.max_entries:
                self._store.pop(next(iter(self._store)))
            self._store[key] = value
            return value
        self.hits += 1
        return value

    def clear(self) -> None:
        """Drop entries and reset the *resettable* counters.

        The cleared counters are folded into the cumulative totals first
        — clearing bounds memory and restarts per-sweep accounting, but
        never erases the process-lifetime history.
        """
        self._cleared_hits += self.hits
        self._cleared_misses += self.misses
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def cumulative_hits(self) -> int:
        """Process-lifetime hit count; monotonic across :meth:`clear`."""
        return self._cleared_hits + self.hits

    @property
    def cumulative_misses(self) -> int:
        """Process-lifetime miss count; monotonic across :meth:`clear`."""
        return self._cleared_misses + self.misses

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            name=self.name, hits=self.hits, misses=self.misses,
            entries=len(self._store),
        )


_REGISTRY: dict[str, EvalCache] = {}

LAYER_RUNTIME_CACHE = EvalCache("layer_runtime")
VSA_RUNTIME_CACHE = EvalCache("vsa_node_runtime")
MEMORY_PLAN_CACHE = EvalCache("memory_plan", max_entries=256)
SIMD_WIDTH_CACHE = EvalCache("simd_width", max_entries=1024)
WORKLOAD_ARRAYS_CACHE = EvalCache("workload_arrays", max_entries=512)


def graph_cache_key(graph: "DataflowGraph") -> tuple:
    """A hashable, content-based identity for a dataflow graph.

    Captures everything the memory/SIMD models read: node names, units,
    GEMM/VSA dimensions, domains, FLOP and byte counters, and the edge
    set (the SIMD fusion rule walks predecessors). Two graphs with equal
    keys produce identical memory plans and SIMD widths.
    """
    nodes = tuple(
        (
            n.name,
            n.unit.value,
            (n.gemm.m, n.gemm.n, n.gemm.k) if n.gemm is not None else None,
            (n.vsa.n, n.vsa.d) if n.vsa is not None else None,
            n.domain.value,
            n.op.flops,
            n.op.bytes_written,
        )
        for n in sorted(graph, key=lambda node: node.name)
    )
    edges = tuple(sorted(graph.nx_graph.edges()))
    return (graph.workload, nodes, edges)


def cached_layer_runtime(h: int, w: int, nl: int, dims: "GemmDims") -> int:
    """Eq. 1 behind the keyed cache (see :func:`runtime.layer_runtime`).

    Computes through the undecorated model (``__wrapped__``) so a value
    is stored once, here — not duplicated into the ``lru_cache`` layer
    the sweep-side callers use.
    """
    return LAYER_RUNTIME_CACHE.get_or_compute(
        (h, w, nl, dims), lambda: layer_runtime.__wrapped__(h, w, nl, dims)
    )


def cached_vsa_node_runtime(
    h: int, w: int, nv: int, dims: "VsaDims", mapping: str = "best"
) -> int:
    """Eqs. 3/4 behind the keyed cache (see :func:`runtime.vsa_node_runtime`)."""
    return VSA_RUNTIME_CACHE.get_or_compute(
        (h, w, nv, dims, mapping),
        lambda: vsa_node_runtime.__wrapped__(h, w, nv, dims, mapping),
    )


def cached_plan_memory(
    graph: "DataflowGraph",
    precision: "MixedPrecisionConfig",
    ifmap_tile_rows: int = 512,
) -> MemoryPlan:
    """Memory sizing behind a graph-content key (see :func:`memory.plan_memory`).

    The plan depends only on graph content and deployed precision, not on
    the candidate geometry — so one exploration pays for it exactly once
    and every re-exploration of the same graph is a cache hit.
    """
    key = (
        graph_cache_key(graph),
        precision.neural.value,
        precision.symbolic.value,
        ifmap_tile_rows,
    )
    return MEMORY_PLAN_CACHE.get_or_compute(
        key, lambda: plan_memory(graph, precision, ifmap_tile_rows)
    )


def cached_simd_width(
    graph: "DataflowGraph",
    array_runtime_cycles: int,
    array_node_cycles: dict[str, int] | None = None,
    candidates: tuple[int, ...] = (16, 32, 64, 128, 256, 512),
    slack_fraction: float = 0.02,
) -> int:
    """SIMD sizing rule behind the keyed cache (see :func:`memory.simd_width`)."""
    key = (
        graph_cache_key(graph),
        array_runtime_cycles,
        tuple(sorted((array_node_cycles or {}).items())),
        candidates,
        slack_fraction,
    )
    return SIMD_WIDTH_CACHE.get_or_compute(
        key,
        lambda: simd_width(
            graph, array_runtime_cycles, array_node_cycles, candidates,
            slack_fraction,
        ),
    )


def cached_workload_arrays(
    layers: tuple["GemmDims", ...], vsa_nodes: tuple["VsaDims", ...]
) -> WorkloadArrays:
    """Per-workload precomputed dimension arrays (see :mod:`.batch`).

    The batched kernels read the same ``(m, n, k)`` / ``(n, d)`` arrays
    for every candidate geometry of a sweep; this cache builds them once
    per distinct workload dimension set — including once per worker
    process, since each process-pool worker carries its own registry.
    """
    key = (tuple(layers), tuple(vsa_nodes))
    return WORKLOAD_ARRAYS_CACHE.get_or_compute(
        key, lambda: WorkloadArrays.from_dims(*key)
    )


def _lru_model_stats() -> dict[str, CacheStats]:
    """The ``runtime.py`` ``lru_cache`` layers as :class:`CacheStats`.

    These caches are process-lifetime and invisible to the keyed
    registry; surfacing their sizes here is what lets a long sweep see
    (and bound, via :func:`clear_model_caches`) their memory growth.
    """
    stats = {}
    for fn in (layer_runtime, vsa_node_runtime):
        info = fn.cache_info()
        name = f"lru.{fn.__name__}"
        stats[name] = CacheStats(
            name=name, hits=info.hits, misses=info.misses,
            entries=info.currsize,
        )
    return stats


def cache_stats() -> dict[str, CacheStats]:
    """Counters for every model cache — keyed registry *and* the
    ``runtime.py`` ``lru_cache`` layers (``lru.*`` names)."""
    stats = {name: cache.stats for name, cache in _REGISTRY.items()}
    stats.update(_lru_model_stats())
    return stats


def counters_snapshot() -> dict[str, tuple[int, int, int]]:
    """Point-in-time ``(hits, misses, entries)`` per cache.

    The persistence layer (``repro.flow.sweep``) takes one snapshot
    before and one after a sweep; the miss delta is the number of fresh
    model evaluations the sweep actually performed — the number a fully
    warm artifact cache must drive to zero. ``entries`` surfaces each
    cache's resident size, including the ``lru.*`` layers whose
    process-lifetime growth :func:`clear_model_caches` bounds.
    """
    return {
        name: (s.hits, s.misses, s.entries)
        for name, s in cache_stats().items()
    }


#: Counters the ``lru_cache`` layers held at each ``cache_clear()``;
#: ``cache_info()`` resets with the cache, so the cumulative view must
#: carry the pre-clear totals itself.
_LRU_CLEARED: dict[str, tuple[int, int]] = {}


def cumulative_snapshot() -> dict[str, tuple[int, int]]:
    """Monotonic ``(hits, misses)`` per cache — the long-lived-process view.

    Unlike :func:`counters_snapshot`, these totals only grow:
    :func:`clear_model_caches` (and per-cache ``clear()``) folds the
    dropped counters into a running carry instead of zeroing them. A
    warm server takes one snapshot per request and diffs with
    :func:`delta_since` — no cache clearing required between requests,
    and a clear that *does* happen (pool close, memory bound) cannot
    make a delta go negative or silently vanish.
    """
    snap = {
        name: (cache.cumulative_hits, cache.cumulative_misses)
        for name, cache in _REGISTRY.items()
    }
    for fn in (layer_runtime, vsa_node_runtime):
        info = fn.cache_info()
        name = f"lru.{fn.__name__}"
        h0, m0 = _LRU_CLEARED.get(name, (0, 0))
        snap[name] = (h0 + info.hits, m0 + info.misses)
    return snap


def delta_since(snapshot: dict[str, tuple[int, int]]) -> dict[str, CacheStats]:
    """Per-cache counter growth since a :func:`cumulative_snapshot`.

    Returns one :class:`CacheStats` per cache whose counters moved
    (``entries`` is the cache's *current* resident size, not a delta).
    Caches created after the snapshot count from zero. Because both
    endpoints are monotonic, the deltas are non-negative even when
    ``clear_model_caches()`` ran in between — the property that makes
    per-request accounting in a long-lived process trustworthy.
    """
    deltas: dict[str, CacheStats] = {}
    entries = {name: s.entries for name, s in cache_stats().items()}
    for name, (hits, misses) in cumulative_snapshot().items():
        h0, m0 = snapshot.get(name, (0, 0))
        if hits - h0 or misses - m0:
            deltas[name] = CacheStats(
                name=name, hits=hits - h0, misses=misses - m0,
                entries=entries.get(name, 0),
            )
    return deltas


def fresh_evaluations_since(snapshot: dict[str, tuple]) -> int:
    """Total new keyed-cache *misses* since ``snapshot`` (each miss
    computed a model result from scratch). Caches cleared or created
    after the snapshot count from zero; the ``lru.*`` layers are
    excluded so a probe served by ``lru_cache`` is never double-counted
    against its keyed twin."""
    total = 0
    for name, cache in _REGISTRY.items():
        misses_then = snapshot.get(name, (0, 0, 0))[1]
        total += max(0, cache.misses - misses_then)
    return total


def clear_model_caches() -> None:
    """Reset every keyed cache *and* the runtime ``lru_cache`` layers.

    Resettable counters zero; the cumulative view keeps counting — the
    dropped ``lru_cache`` counters are folded into :data:`_LRU_CLEARED`
    (the keyed caches carry their own fold in :meth:`EvalCache.clear`).
    """
    for cache in _REGISTRY.values():
        cache.clear()
    for fn in (layer_runtime, vsa_node_runtime):
        info = fn.cache_info()
        name = f"lru.{fn.__name__}"
        h0, m0 = _LRU_CLEARED.get(name, (0, 0))
        _LRU_CLEARED[name] = (h0 + info.hits, m0 + info.misses)
        fn.cache_clear()
