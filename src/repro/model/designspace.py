"""Design-space accounting (paper Table II).

The cross-coupled space is defined by the hardware configuration —
sub-array height ``H``, width ``W``, count ``N`` with at most ``M = 2^m``
PEs — and the per-node mapping vectors ``Nl`` (one entry per layer node)
and ``Nv`` (one per VSA node), each entry in ``[1, N)``:

* original HW configs: ``m·(m+1)/2`` power-of-two ``(H, W)`` pairs,
* original mappings: ``(N−1)^k`` for each config, ``k`` = #layer + #VSA nodes,

which reaches ~10³⁰⁰ for ``m = 10`` and NVSA-scale graphs. The two-phase
DSE reduces this to ``(#pruned HW configs) × (N−1)`` in Phase I plus
``Iter_max × #layers`` Phase II refinement steps — about 10³ points, the
~10¹⁰⁰× reduction ("100 magnitudes") Table II claims. Sizes are handled in
log10 to avoid overflow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["DesignSpaceSize", "design_space_size", "hw_config_candidates"]


def hw_config_candidates(
    m: int,
    aspect_min: float = 0.25,
    aspect_max: float = 16.0,
    prune: bool = True,
) -> list[tuple[int, int]]:
    """Power-of-two ``(H, W)`` pairs with ``H·W ≤ 2^m``.

    With ``prune=True``, applies the paper's Phase I aspect-ratio pruning
    ``1/4 ≤ H/W ≤ 16`` (Table II).
    """
    if m < 1:
        raise ConfigError(f"m must be >= 1, got {m}")
    out: list[tuple[int, int]] = []
    for a in range(m + 1):
        for b in range(m + 1 - a):
            h, w = 1 << a, 1 << b
            if h * w > (1 << m):
                continue
            if prune:
                ratio = h / w
                if not (aspect_min <= ratio <= aspect_max):
                    continue
            out.append((h, w))
    return out


@dataclass(frozen=True)
class DesignSpaceSize:
    """Log-scale sizes of the original and DSE-explored spaces."""

    m: int
    n_layer_nodes: int
    n_vsa_nodes: int
    log10_original: float
    log10_phase1: float
    log10_phase2: float

    @property
    def log10_explored(self) -> float:
        """Points the two-phase DSE actually visits."""
        return math.log10(10**self.log10_phase1 + 10**self.log10_phase2)

    @property
    def log10_reduction(self) -> float:
        """Orders of magnitude saved — Table II's "100 magnitudes"."""
        return self.log10_original - self.log10_explored


def design_space_size(
    m: int,
    n_layer_nodes: int,
    n_vsa_nodes: int,
    iter_max: int = 8,
) -> DesignSpaceSize:
    """Table II accounting for a workload graph with the given node counts.

    Original space: ``Σ over (H,W) configs of (N−1)^k`` where
    ``N = ⌊2^m/(H·W)⌋`` and ``k = n_layer_nodes + n_vsa_nodes``; we report
    its log10. Phase I visits ``(#pruned configs) × (N−1)`` points; Phase
    II visits ``iter_max × n_layer_nodes``.
    """
    if n_layer_nodes < 1 or n_vsa_nodes < 1:
        raise ConfigError("need at least one layer node and one VSA node")
    if iter_max < 1:
        raise ConfigError(f"iter_max must be >= 1, got {iter_max}")
    k = n_layer_nodes + n_vsa_nodes
    max_pes = 1 << m

    # log10 of Σ_configs (N-1)^k, accumulated in log space.
    log_total = None
    for h, w in hw_config_candidates(m, prune=False):
        n_sub = max_pes // (h * w)
        if n_sub < 2:
            continue
        term = k * math.log10(n_sub - 1)
        if log_total is None:
            log_total = term
        else:
            hi, lo = max(log_total, term), min(log_total, term)
            log_total = hi + math.log10(1.0 + 10 ** (lo - hi))
    if log_total is None:
        raise ConfigError(f"no feasible configs for m={m}")

    phase1_points = 0
    for h, w in hw_config_candidates(m, prune=True):
        n_sub = max_pes // (h * w)
        if n_sub >= 2:
            phase1_points += n_sub - 1
    phase2_points = iter_max * n_layer_nodes

    return DesignSpaceSize(
        m=m,
        n_layer_nodes=n_layer_nodes,
        n_vsa_nodes=n_vsa_nodes,
        log10_original=log_total,
        log10_phase1=math.log10(max(phase1_points, 1)),
        log10_phase2=math.log10(max(phase2_points, 1)),
    )
