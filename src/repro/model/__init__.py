"""Analytical cost models (paper Sec. V-C, Eqs. 1-5, and Table II).

The models here are the DSE's objective function: cycle-count estimates of
NN layers and VSA nodes on the AdArray for a given ``(H, W, N)`` geometry
and partition vectors ``Nl, Nv``, plus the memory sizing rules and the
design-space accounting that Table II reports.
"""

from .runtime import (
    layer_runtime,
    nn_total_runtime,
    parallel_runtime,
    sequential_runtime,
    simd_runtime,
    vsa_node_runtime,
    vsa_streaming_latency,
    vsa_total_runtime,
)
from .memory import MemoryPlan, plan_memory, simd_width
from .designspace import DesignSpaceSize, design_space_size
from .batch import (
    PartitionSearchOutcome,
    WorkloadArrays,
    bisect_uniform_partition,
    dense_uniform_partition,
    nn_total_runtime_vec,
    parallel_runtime_vec,
    sequential_runtime_batch,
    sequential_runtime_vec,
    vsa_total_runtime_vec,
)
from .backend import (
    EVALUATION_BACKENDS,
    AnalyticBackend,
    BackendInfo,
    CycleBreakdown,
    DesignEvaluation,
    EvaluationBackend,
    GeometryScore,
    ScheduleBackend,
    backend_version,
    make_backend,
)
from .cache import (
    CacheStats,
    EvalCache,
    cache_stats,
    cached_layer_runtime,
    cached_plan_memory,
    cached_simd_width,
    cached_vsa_node_runtime,
    cached_workload_arrays,
    clear_model_caches,
    graph_cache_key,
)

__all__ = [
    "layer_runtime",
    "nn_total_runtime",
    "vsa_node_runtime",
    "vsa_total_runtime",
    "vsa_streaming_latency",
    "sequential_runtime",
    "parallel_runtime",
    "simd_runtime",
    "MemoryPlan",
    "plan_memory",
    "simd_width",
    "DesignSpaceSize",
    "design_space_size",
    "WorkloadArrays",
    "PartitionSearchOutcome",
    "bisect_uniform_partition",
    "dense_uniform_partition",
    "nn_total_runtime_vec",
    "vsa_total_runtime_vec",
    "parallel_runtime_vec",
    "sequential_runtime_vec",
    "sequential_runtime_batch",
    "EVALUATION_BACKENDS",
    "AnalyticBackend",
    "BackendInfo",
    "CycleBreakdown",
    "DesignEvaluation",
    "EvaluationBackend",
    "GeometryScore",
    "ScheduleBackend",
    "backend_version",
    "make_backend",
    "CacheStats",
    "EvalCache",
    "cache_stats",
    "cached_layer_runtime",
    "cached_vsa_node_runtime",
    "cached_plan_memory",
    "cached_simd_width",
    "cached_workload_arrays",
    "clear_model_caches",
    "graph_cache_key",
]
