"""Batched NumPy evaluation of the analytical runtime models (Eqs. 1-5).

The scalar models in :mod:`repro.model.runtime` are exact but
interpreter-bound: every candidate design point pays Python-level
function calls and ``lru_cache`` lookups per layer and per VSA node. The
DSE hot path evaluates the *same* workload dimensions for thousands of
``(H, W, N, N̄l)`` points, so this module re-expresses Eqs. 1-5 as
vectorized integer ceil-division arithmetic over precomputed dimension
arrays:

* :class:`WorkloadArrays` — the per-workload ``(m, n, k)`` layer arrays
  and ``(n, d)`` VSA arrays, built once per graph (and memoized by
  :func:`repro.model.cache.cached_workload_arrays`);
* ``*_vec`` functions — one design point, all layers/VSA nodes at once
  (the Phase II refinement loop's shape);
* ``*_batch`` functions — many partitions or many geometries at once
  (the Phase I sweep's shape);
* :func:`bisect_uniform_partition` — the monotone crossing-point search
  that replaces the dense ``N̄l ∈ [1, N)`` scan, with an explicit
  plateau-resolution step so its result is **bit-identical** to the
  serial strict-``<`` first-wins scan (see DESIGN.md "Batched models &
  partition bisection" for the monotonicity and tie-break proofs).

Exactness: everything here is ``int64`` integer arithmetic —
``ceil(a/b) = -(-a // b)`` — so results equal the scalar models' Python
ints exactly, not approximately. There is no floating point anywhere in
this module. Because NumPy wraps silently on int64 overflow, every
entry point first checks an exact Python-int worst-case bound for its
``(H, W)`` domain (the models are monotone, so the extreme sits at
partition 1) and raises :class:`~repro.errors.ConfigError` when a
workload's dimensions could overflow — use the scalar
``partition_search="dense"`` path for such pathological sizes rather
than risk a silently wrong design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..errors import ConfigError
from ..nn.gemm import GemmDims
from ..trace.opnode import VsaDims

__all__ = [
    "WorkloadArrays",
    "fits_int64_domain",
    "nn_total_runtime_vec",
    "vsa_total_runtime_vec",
    "parallel_runtime_vec",
    "sequential_runtime_vec",
    "nn_uniform_runtime_batch",
    "vsa_uniform_runtime_batch",
    "parallel_uniform_runtime_batch",
    "sequential_runtime_batch",
    "bisect_uniform_partition",
    "dense_uniform_partition",
    "PartitionSearchOutcome",
]


def _ceil_div(a, b):
    """Elementwise ``⌈a / b⌉`` for non-negative ints/arrays (exact)."""
    return -(-a // b)


#: Stay one bit under ``2**63 - 1`` so even an off-by-one in the bound
#: reasoning cannot reach the wrap-around.
_INT64_HEADROOM = 1 << 62


def _worst_case_total(
    arrays: "WorkloadArrays", h_lo: int, h_hi: int, w_lo: int, w_hi: int
) -> int:
    """Exact Python-int upper bound on every kernel value for a domain.

    Every batched expression is monotone in the partition counts, so
    its maximum over a probe domain sits at partition 1; the geometry
    factors are bounded by the ``[h_lo, h_hi] × [w_lo, w_hi]`` box
    (coefficients grow with ``H``/``W``, ceil quotients shrink). The
    returned total dominates every matrix entry, partial sum, and
    result the kernels can produce for this domain.
    """
    cd = lambda a, b: -(-a // b)  # noqa: E731 - exact Python-int ceil
    worst_nn = sum(
        (2 * h_hi + w_hi + g.m - 2) * cd(g.n, h_lo) * cd(g.k, w_lo)
        for g in arrays.layers
    )
    worst_vsa = 0
    for v in arrays.vsa_nodes:
        t_hi = 3 * h_hi + v.d - 1
        spatial = v.n * cd(v.d, w_lo * h_lo) * t_hi
        temporal = cd(v.n, w_lo) * cd(v.d, h_lo) * t_hi
        worst_vsa += max(spatial, temporal)
    return worst_nn + worst_vsa


def fits_int64_domain(
    arrays: "WorkloadArrays", h_lo: int, h_hi: int, w_lo: int, w_hi: int
) -> bool:
    """True when the batched kernels cannot overflow for this domain.

    Memoized per :class:`WorkloadArrays` instance, so callers (the
    engine's ``auto``/``bisect`` paths, Phase II) can probe it per
    geometry for the cost of a set lookup and fall back to the scalar
    models when it fails.
    """
    key = (h_lo, h_hi, w_lo, w_hi)
    if key in arrays._headroom_ok:
        return True
    # Shrinking the box only shrinks the bound (coefficients are maxed
    # at the high edge, ceil quotients at the low edge), so any proven
    # box that contains this domain proves it too — the sweep validates
    # its whole (H, W) range once and every per-geometry kernel check
    # rides that proof instead of recomputing the bound.
    for a, b, c, d in arrays._headroom_ok:
        if a <= h_lo and h_hi <= b and c <= w_lo and w_hi <= d:
            arrays._headroom_ok.add(key)
            return True
    if _worst_case_total(arrays, h_lo, h_hi, w_lo, w_hi) >= _INT64_HEADROOM:
        return False
    arrays._headroom_ok.add(key)
    return True


def _check_int64_headroom(
    arrays: "WorkloadArrays", h_lo: int, h_hi: int, w_lo: int, w_hi: int
) -> None:
    """Raise :class:`ConfigError` instead of letting NumPy wrap silently —
    the scalar models handle arbitrary magnitudes."""
    if not fits_int64_domain(arrays, h_lo, h_hi, w_lo, w_hi):
        worst = _worst_case_total(arrays, h_lo, h_hi, w_lo, w_hi)
        raise ConfigError(
            "workload dimensions too large for the batched int64 runtime "
            f"kernels (worst-case cycle count {worst:.3e} exceeds the "
            f"int64 guard for H in [{h_lo}, {h_hi}], W in [{w_lo}, "
            f"{w_hi}]); use the scalar models (partition_search='dense') "
            "for this workload"
        )


@dataclass(frozen=True, eq=False)
class WorkloadArrays:
    """A workload's cost dimensions as ready-to-broadcast int64 arrays.

    One instance captures everything Eqs. 1-5 read about a workload:
    ``m/n/k`` per GEMM layer (``R_l``) and ``vn/vd`` per VSA node
    (``R_v``). Build one per dataflow graph and reuse it across every
    candidate geometry and partition — the arrays never change during a
    sweep.
    """

    layers: tuple[GemmDims, ...]
    vsa_nodes: tuple[VsaDims, ...]
    m: np.ndarray = field(repr=False)
    n: np.ndarray = field(repr=False)
    k: np.ndarray = field(repr=False)
    vn: np.ndarray = field(repr=False)
    vd: np.ndarray = field(repr=False)
    #: ``(h_lo, h_hi, w_lo, w_hi)`` domains already proven overflow-safe
    #: (memo of :func:`_check_int64_headroom`; identity-keyed, never
    #: part of equality/serialization semantics).
    _headroom_ok: set = field(
        default_factory=set, init=False, repr=False, compare=False
    )

    @classmethod
    def from_dims(
        cls,
        layers: Sequence[GemmDims],
        vsa_nodes: Sequence[VsaDims] = (),
    ) -> "WorkloadArrays":
        layers = tuple(layers)
        vsa_nodes = tuple(vsa_nodes)
        if not layers:
            raise ConfigError("WorkloadArrays needs at least one GEMM layer")
        return cls(
            layers=layers,
            vsa_nodes=vsa_nodes,
            m=np.array([g.m for g in layers], dtype=np.int64),
            n=np.array([g.n for g in layers], dtype=np.int64),
            k=np.array([g.k for g in layers], dtype=np.int64),
            vn=np.array([v.n for v in vsa_nodes], dtype=np.int64),
            vd=np.array([v.d for v in vsa_nodes], dtype=np.int64),
        )

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def n_vsa(self) -> int:
        return len(self.vsa_nodes)


# -- one design point, vector partitions (Phase II's shape) ------------------


def nn_total_runtime_vec(
    h: int, w: int, nl: Sequence[int] | np.ndarray, arrays: WorkloadArrays
) -> int:
    """Eqs. 1+2 with a per-layer partition vector ``Nl`` (length L)."""
    nl = np.asarray(nl, dtype=np.int64)
    if nl.shape != arrays.m.shape:
        raise ConfigError(
            f"partition vector length {nl.size} != layer count "
            f"{arrays.n_layers}"
        )
    _check_int64_headroom(arrays, h, h, w, w)
    per_layer = (
        (2 * h + w + arrays.m - 2)
        * _ceil_div(_ceil_div(arrays.n, nl), h)
        * _ceil_div(arrays.k, w)
    )
    return int(per_layer.sum())


def vsa_total_runtime_vec(
    h: int, w: int, nv: Sequence[int] | np.ndarray, arrays: WorkloadArrays
) -> int:
    """Eqs. 3-5 with a per-node partition vector ``Nv`` (length V)."""
    nv = np.asarray(nv, dtype=np.int64)
    if nv.shape != arrays.vn.shape:
        raise ConfigError(
            f"partition vector length {nv.size} != VSA node count "
            f"{arrays.n_vsa}"
        )
    if arrays.n_vsa == 0:
        return 0
    _check_int64_headroom(arrays, h, h, w, w)
    t = 3 * h + arrays.vd - 1
    spatial = (arrays.vn * _ceil_div(arrays.vd, w * h * nv) * t).sum()
    temporal = (
        _ceil_div(arrays.vn, w) * _ceil_div(arrays.vd, h * nv) * t
    ).sum()
    return int(min(spatial, temporal))


def parallel_runtime_vec(
    h: int,
    w: int,
    nl: Sequence[int] | np.ndarray,
    nv: Sequence[int] | np.ndarray,
    arrays: WorkloadArrays,
) -> int:
    """Algorithm 1 line 8: ``max(t_nn, t_vsa)`` under vector partitions."""
    return max(
        nn_total_runtime_vec(h, w, nl, arrays),
        vsa_total_runtime_vec(h, w, nv, arrays),
    )


def sequential_runtime_vec(
    h: int, w: int, n_sub: int, arrays: WorkloadArrays
) -> int:
    """Algorithm 1 line 12: NN then VSA, each on the whole array."""
    t_nn = nn_total_runtime_vec(
        h, w, np.full(arrays.n_layers, n_sub, dtype=np.int64), arrays
    )
    if arrays.n_vsa == 0:
        return t_nn
    t_vsa = vsa_total_runtime_vec(
        h, w, np.full(arrays.n_vsa, n_sub, dtype=np.int64), arrays
    )
    return t_nn + t_vsa


# -- one geometry, many uniform partitions (Phase I's inner loop) ------------


def nn_uniform_runtime_batch(
    h: int, w: int, nl_bars: np.ndarray, arrays: WorkloadArrays
) -> np.ndarray:
    """``t_nn`` at uniform splits: shape ``(P,)`` partitions → ``(P,)``."""
    _check_int64_headroom(arrays, h, h, w, w)
    nl = np.asarray(nl_bars, dtype=np.int64)[:, None]        # (P, 1)
    per_layer = (
        (2 * h + w + arrays.m - 2)
        * _ceil_div(_ceil_div(arrays.n, nl), h)
        * _ceil_div(arrays.k, w)
    )                                                        # (P, L)
    return per_layer.sum(axis=1)


def vsa_uniform_runtime_batch(
    h: int, w: int, nv_bars: np.ndarray, arrays: WorkloadArrays
) -> np.ndarray:
    """``t_vsa`` at uniform splits: shape ``(P,)`` partitions → ``(P,)``."""
    nv = np.asarray(nv_bars, dtype=np.int64)[:, None]        # (P, 1)
    if arrays.n_vsa == 0:
        return np.zeros(nv.shape[0], dtype=np.int64)
    _check_int64_headroom(arrays, h, h, w, w)
    t = 3 * h + arrays.vd - 1
    spatial = (arrays.vn * _ceil_div(arrays.vd, w * h * nv) * t).sum(axis=1)
    temporal = (
        _ceil_div(arrays.vn, w) * _ceil_div(arrays.vd, h * nv) * t
    ).sum(axis=1)
    return np.minimum(spatial, temporal)


def parallel_uniform_runtime_batch(
    h: int, w: int, n_sub: int, nl_bars: np.ndarray, arrays: WorkloadArrays
) -> np.ndarray:
    """``max(t_nn(N̄l), t_vsa(N − N̄l))`` over a batch of splits."""
    nl_bars = np.asarray(nl_bars, dtype=np.int64)
    return np.maximum(
        nn_uniform_runtime_batch(h, w, nl_bars, arrays),
        vsa_uniform_runtime_batch(h, w, n_sub - nl_bars, arrays),
    )


# -- many geometries at once (Phase I's outer loop) --------------------------


def sequential_runtime_batch(
    hs: np.ndarray, ws: np.ndarray, ns: np.ndarray, arrays: WorkloadArrays
) -> np.ndarray:
    """Sequential runtime of every ``(H, W, N)`` geometry: ``(G,)``.

    One call covers the whole candidate stream of a sweep — the
    geometry-batched form of :func:`sequential_runtime_vec`.
    """
    h = np.asarray(hs, dtype=np.int64)[:, None]              # (G, 1)
    w = np.asarray(ws, dtype=np.int64)[:, None]
    n = np.asarray(ns, dtype=np.int64)[:, None]
    _check_int64_headroom(
        arrays, int(h.min()), int(h.max()), int(w.min()), int(w.max())
    )
    t_nn = (
        (2 * h + w + arrays.m - 2)
        * _ceil_div(_ceil_div(arrays.n, n), h)
        * _ceil_div(arrays.k, w)
    ).sum(axis=1)                                            # (G,)
    if arrays.n_vsa == 0:
        return t_nn
    t = 3 * h + arrays.vd - 1                                # (G, V)
    spatial = (arrays.vn * _ceil_div(arrays.vd, w * h * n) * t).sum(axis=1)
    temporal = (
        _ceil_div(arrays.vn, w) * _ceil_div(arrays.vd, h * n) * t
    ).sum(axis=1)
    return t_nn + np.minimum(spatial, temporal)


# -- the monotone partition search -------------------------------------------


@dataclass(frozen=True)
class PartitionSearchOutcome:
    """Result of one geometry's static-partition search.

    ``probes`` counts the distinct candidate splits actually priced
    (one unit per ``N̄l`` at which ``t_nn`` and/or ``t_vsa`` was
    evaluated, the same unit the dense scan's ``N − 1`` uses) — the
    bisection pays ``O(log N)``. The returned
    ``(t_parallel, nl_bar, nv_bar)`` triple is identical across search
    strategies by construction.
    """

    t_parallel: int
    nl_bar: int
    nv_bar: int
    probes: int


class _UniformEvaluator:
    """Memoized scalar probes of ``t_nn(N̄l)`` / ``t_vsa(N̄v)`` at one geometry.

    Geometry-constant factors — ``(2H + W + m − 2)·⌈k/W⌉`` per layer,
    ``T = 3H + d − 1`` per VSA node — are precomputed once so each probe
    is a single vectorized ceil-div plus a dot-sum. Memoization makes
    repeated probes (the crossing pass and the plateau pass overlap)
    free; the memo keys are also the honest probe count — every
    distinct partition point the search actually priced.
    """

    def __init__(self, h: int, w: int, arrays: WorkloadArrays):
        self._nn_coef = (2 * h + w + arrays.m - 2) * _ceil_div(arrays.k, w)
        self._nn_n = arrays.n
        t = 3 * h + arrays.vd - 1
        self._sp_coef = arrays.vn * t
        self._tp_coef = _ceil_div(arrays.vn, w) * t
        self._vd = arrays.vd
        self._h = h
        self._wh = w * h
        self._nn_memo: dict[int, int] = {}
        self._vsa_memo: dict[int, int] = {}

    def points_probed(self, n_sub: int) -> int:
        """Distinct ``N̄l`` splits priced (dense-scan-comparable units)."""
        return len(
            self._nn_memo.keys() | {n_sub - nv for nv in self._vsa_memo}
        )

    def t_nn(self, nl: int) -> int:
        value = self._nn_memo.get(nl)
        if value is None:
            value = int(
                (
                    self._nn_coef
                    * _ceil_div(_ceil_div(self._nn_n, nl), self._h)
                ).sum()
            )
            self._nn_memo[nl] = value
        return value

    def t_vsa(self, nv: int) -> int:
        value = self._vsa_memo.get(nv)
        if value is None:
            spatial = (
                self._sp_coef * _ceil_div(self._vd, self._wh * nv)
            ).sum()
            temporal = (
                self._tp_coef * _ceil_div(self._vd, self._h * nv)
            ).sum()
            value = int(min(spatial, temporal))
            self._vsa_memo[nv] = value
        return value


def bisect_uniform_partition(
    h: int, w: int, n_sub: int, arrays: WorkloadArrays
) -> PartitionSearchOutcome:
    """Best uniform split ``N̄l : N̄v`` by monotone crossing-point bisection.

    The objective ``f(N̄l) = max(t_nn(N̄l), t_vsa(N − N̄l))`` is the max
    of a non-increasing and a non-decreasing step function of ``N̄l``,
    so it is non-increasing up to the crossing point ``c`` (the smallest
    ``N̄l`` with ``t_nn ≤ t_vsa``) and non-decreasing from ``c`` on. The
    search therefore:

    1. bisects for ``c`` (the predicate ``t_nn(N̄l) ≤ t_vsa(N − N̄l)``
       is monotone in ``N̄l``);
    2. takes the better of ``f(c − 1)`` and ``f(c)`` as the optimum
       value ``v*`` (ties go left, matching strict-``<`` first-wins);
    3. **plateau resolution** — when ``v* = f(c − 1)``, bisects again
       for the *smallest* ``N̄l`` with ``t_nn(N̄l) ≤ v*``: because
       ``t_nn ≥ v*`` everywhere left of ``c``, that point is the first
       index of the plateau where ``f`` equals ``v*``, i.e. exactly the
       split the serial ascending scan would return.

    Requires ``n_sub ≥ 2`` and a non-empty VSA node set (otherwise there
    is no split to search). Cost: ``O(log N)`` probes, each ``O(L + V)``
    vectorized — versus the dense scan's ``O(N · (L + V))``.
    """
    if n_sub < 2:
        raise ConfigError(f"partition search needs n_sub >= 2, got {n_sub}")
    if arrays.n_vsa == 0:
        raise ConfigError("partition search needs at least one VSA node")
    _check_int64_headroom(arrays, h, h, w, w)
    ev = _UniformEvaluator(h, w, arrays)

    def crossed(nl: int) -> bool:
        return ev.t_nn(nl) <= ev.t_vsa(n_sub - nl)

    def f(nl: int) -> int:
        return max(ev.t_nn(nl), ev.t_vsa(n_sub - nl))

    lo, hi = 1, n_sub - 1
    if crossed(lo):
        c = lo
    elif not crossed(hi):
        c = n_sub                     # no crossing inside the range
    else:
        # Invariant: not crossed(lo), crossed(hi).
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if crossed(mid):
                hi = mid
            else:
                lo = mid
        c = hi

    left = c - 1                      # last point of the non-increasing run
    right = min(c, n_sub - 1)         # first point of the non-decreasing run
    if left < 1:
        best_nl = right
        best_t = f(right)
    else:
        t_left = f(left)
        t_right = f(right) if right > left else t_left
        if t_left <= t_right:
            # The optimum sits on the non-increasing side; resolve the
            # plateau to its leftmost point (serial first-wins).
            best_t = t_left
            a_lo, a_hi = 1, left
            if ev.t_nn(a_lo) <= best_t:
                best_nl = a_lo
            else:
                # Invariant: t_nn(a_lo) > best_t, t_nn(a_hi) <= best_t.
                while a_hi - a_lo > 1:
                    mid = (a_lo + a_hi) // 2
                    if ev.t_nn(mid) <= best_t:
                        a_hi = mid
                    else:
                        a_lo = mid
                best_nl = a_hi
        else:
            best_t = t_right
            best_nl = right
    return PartitionSearchOutcome(
        t_parallel=best_t,
        nl_bar=best_nl,
        nv_bar=n_sub - best_nl,
        probes=ev.points_probed(n_sub),
    )


def dense_uniform_partition(
    h: int, w: int, n_sub: int, arrays: WorkloadArrays
) -> PartitionSearchOutcome:
    """Reference dense scan over all splits, via the batch kernels.

    Evaluates every ``N̄l ∈ [1, N)`` in one vectorized pass and applies
    the serial strict-``<`` first-wins rule (``argmin`` returns the first
    minimum). Used by equivalence tests as a NumPy-side oracle between
    the scalar dense scan and the bisection.
    """
    if n_sub < 2:
        raise ConfigError(f"partition search needs n_sub >= 2, got {n_sub}")
    if arrays.n_vsa == 0:
        raise ConfigError("partition search needs at least one VSA node")
    nl_bars = np.arange(1, n_sub, dtype=np.int64)
    t = parallel_uniform_runtime_batch(h, w, n_sub, nl_bars, arrays)
    best = int(np.argmin(t))          # first occurrence of the minimum
    return PartitionSearchOutcome(
        t_parallel=int(t[best]),
        nl_bar=int(nl_bars[best]),
        nv_bar=int(n_sub - nl_bars[best]),
        probes=int(n_sub - 1),
    )
