"""Analytical runtime models — the paper's Eqs. 1-5, plus a SIMD model.

All results are cycle counts on the AdArray at its design clock. The
equations, as printed in the paper (Sec. V-C, "Analytical models"):

Eq. 1  ``t_l(H, W, Nl[i]) = (2H + W + d1 − 2) · ⌈⌈d2/Nl[i]⌉/H⌉ · ⌈d3/W⌉``
       for a layer with GEMM dims ``d1, d2, d3 = m, n, k`` on ``Nl[i]``
       sub-arrays of ``H × W`` (row-level scale-out partition).

Eq. 2  ``t_nn = Σ_i t_l``  over the layer node set ``R_l``.

Eq. 3  ``t_v,spatial = n_j · ⌈d_j / (W·H·Nv[j])⌉ · T``
Eq. 4  ``t_v,temp    = ⌈n_j / W⌉ · ⌈d_j / (H·Nv[j])⌉ · T``
       with ``T = 3H + d_j − 1`` — the streaming latency of the Fig. 3(b)
       schedule (verified cycle-exact against the register-level simulator
       in ``repro.arch.column``). Eq. 4's second factor is printed as
       ``⌈dj/H × Nv[j]⌉`` in the paper; dimensional analysis and symmetry
       with Eq. 3 require ``⌈dj/(H·Nv[j])⌉`` (see DESIGN.md).

Eq. 5  ``t_vsa = min(Σ_j t_v,temp, Σ_j t_v,spatial)`` over ``R_v``.
"""

from __future__ import annotations

import functools
from collections.abc import Sequence

from ..errors import ConfigError
from ..nn.gemm import GemmDims
from ..trace.opnode import VsaDims
from ..utils import ceil_div

__all__ = [
    "vsa_streaming_latency",
    "layer_runtime",
    "nn_total_runtime",
    "vsa_node_runtime",
    "vsa_total_runtime",
    "sequential_runtime",
    "parallel_runtime",
    "circulant_gemm_runtime",
    "monolithic_baseline_runtime",
    "simd_runtime",
]


def _check_geometry(h: int, w: int, n_sub: int) -> None:
    if h < 1 or w < 1 or n_sub < 1:
        raise ConfigError(f"invalid sub-array geometry H={h}, W={w}, N={n_sub}")


def vsa_streaming_latency(h: int, d: int) -> int:
    """``T = 3H + d − 1``: one column's circular-convolution latency.

    3 cycles per PE stage (stationary load + passing-register skew +
    accumulate) across ``H`` rows, plus ``d − 1`` additional streaming
    beats for a ``d``-element vector.
    """
    if h < 1 or d < 1:
        raise ConfigError(f"invalid streaming shape H={h}, d={d}")
    return 3 * h + d - 1


@functools.lru_cache(maxsize=1 << 18)
def layer_runtime(h: int, w: int, nl: int, dims: GemmDims) -> int:
    """Eq. 1: one GEMM layer on ``nl`` sub-arrays of ``H × W``."""
    _check_geometry(h, w, nl)
    m, n, k = dims.m, dims.n, dims.k
    return (2 * h + w + m - 2) * ceil_div(ceil_div(n, nl), h) * ceil_div(k, w)


def nn_total_runtime(
    h: int, w: int, nl: Sequence[int], layers: Sequence[GemmDims]
) -> int:
    """Eq. 2: total NN runtime of one loop over layer set ``R_l``."""
    if len(nl) != len(layers):
        raise ConfigError(
            f"partition vector length {len(nl)} != layer count {len(layers)}"
        )
    return sum(layer_runtime(h, w, nl_i, dims) for nl_i, dims in zip(nl, layers))


@functools.lru_cache(maxsize=1 << 18)
def vsa_node_runtime(
    h: int, w: int, nv: int, dims: VsaDims, mapping: str = "best"
) -> int:
    """Eqs. 3/4: one VSA node on ``nv`` sub-arrays, spatial or temporal.

    * ``spatial`` — each vector's ``d`` elements are spread across all PEs
      of the ``nv`` sub-arrays; vectors stream through one at a time.
    * ``temporal`` — up to ``W`` vectors stream in parallel (one per
      column), each vector folded over ``H · nv`` PEs.
    * ``best`` — the faster of the two (what the DAG picks per Eq. 5).
    """
    _check_geometry(h, w, nv)
    t = vsa_streaming_latency(h, dims.d)
    spatial = dims.n * ceil_div(dims.d, w * h * nv) * t
    temporal = ceil_div(dims.n, w) * ceil_div(dims.d, h * nv) * t
    if mapping == "spatial":
        return spatial
    if mapping == "temporal":
        return temporal
    if mapping == "best":
        return min(spatial, temporal)
    raise ConfigError(f"unknown VSA mapping {mapping!r}")


def vsa_total_runtime(
    h: int, w: int, nv: Sequence[int], nodes: Sequence[VsaDims]
) -> int:
    """Eq. 5: min over whole-loop spatial vs temporal mapping schemes."""
    if len(nv) != len(nodes):
        raise ConfigError(
            f"partition vector length {len(nv)} != VSA node count {len(nodes)}"
        )
    if not nodes:
        return 0
    spatial = sum(
        vsa_node_runtime(h, w, nv_j, dims, "spatial")
        for nv_j, dims in zip(nv, nodes)
    )
    temporal = sum(
        vsa_node_runtime(h, w, nv_j, dims, "temporal")
        for nv_j, dims in zip(nv, nodes)
    )
    return min(spatial, temporal)


def sequential_runtime(
    h: int,
    w: int,
    n_sub: int,
    layers: Sequence[GemmDims],
    vsa_nodes: Sequence[VsaDims],
) -> int:
    """Algorithm 1 line 12: run NN then VSA, each on the whole array."""
    _check_geometry(h, w, n_sub)
    t_nn = nn_total_runtime(h, w, [n_sub] * len(layers), layers)
    t_vsa = vsa_total_runtime(h, w, [n_sub] * len(vsa_nodes), vsa_nodes)
    return t_nn + t_vsa


def parallel_runtime(
    h: int,
    w: int,
    nl: Sequence[int],
    nv: Sequence[int],
    layers: Sequence[GemmDims],
    vsa_nodes: Sequence[VsaDims],
) -> int:
    """Algorithm 1 line 8: ``max(t_nn, t_vsa)`` under a static partition.

    The max models the fused-loop steady state: with inter-loop
    parallelism (Fig. 4 step ③) the NN portion of loop ``i+1`` overlaps
    the symbolic portion of loop ``i``, so throughput is set by the slower
    side.
    """
    t_nn = nn_total_runtime(h, w, nl, layers)
    t_vsa = vsa_total_runtime(h, w, nv, vsa_nodes)
    return max(t_nn, t_vsa)


def circulant_gemm_runtime(h: int, w: int, dims: VsaDims) -> int:
    """VSA node cost on a *traditional* systolic array (no streaming mode).

    Without the passing-register mode, circular convolution lowers to a
    circulant-matrix GEMM — ``(n × d) · (d × d)`` — with a ``d×`` data
    blow-up (Sec. IV-B calls this "extremely inefficient"). Used by the
    Fig. 6 "w/o Phase I" ablation and the TPU-like baseline.
    """
    return layer_runtime(h, w, 1, GemmDims(m=dims.n, n=dims.d, k=dims.d))


def monolithic_baseline_runtime(
    h: int,
    w: int,
    layers: Sequence[GemmDims],
    vsa_nodes: Sequence[VsaDims],
) -> int:
    """Fig. 6 "w/o Phase I": one monolithic ``H × W`` traditional array.

    Same memory system and SIMD fusion as NSFlow, but no sub-array folding
    and no VSA streaming mode: everything runs sequentially as GEMMs, with
    VSA nodes paying the circulant lowering.
    """
    t_nn = nn_total_runtime(h, w, [1] * len(layers), layers)
    t_vsa = sum(circulant_gemm_runtime(h, w, dims) for dims in vsa_nodes)
    return t_nn + t_vsa


def simd_runtime(flops: int, simd_width: int, pipeline_depth: int = 8) -> int:
    """Cycle estimate for an element-wise/reduction op on the SIMD unit.

    Each lane retires one MAC-equivalent per cycle after ``pipeline_depth``
    fill cycles — the model used to check that SIMD latency is hidden
    (paper Sec. V-C, "SIMD size is minimized such that latency … can be
    hidden").
    """
    if simd_width < 1:
        raise ConfigError(f"simd_width must be >= 1, got {simd_width}")
    if flops < 0:
        raise ConfigError(f"flops must be >= 0, got {flops}")
    return pipeline_depth + ceil_div(max(flops, 1) // 2 + (flops % 2), simd_width)
