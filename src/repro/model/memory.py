"""Memory sizing rules (paper Sec. V-C, "Memory and SIMD unit").

The rules as stated: ``MA1 = max(filter size in R_l)``, ``MA2 = max(node
size in R_v)`` (merged for non-parallel operation), ``MemB`` is the IFMAP
buffer, ``MemC`` holds array/SIMD outputs, the URAM cache is
``2 × (MA + MB + MC)``, and the SIMD width is the smallest that hides
element-wise latency under the concurrent array runtime.

Sizes depend on deployed precision: filters are stored at the NN precision
and VSA operands at the symbolic precision (paper Sec. IV-D: mixed
precision is also a memory optimization).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..graph.dataflow import DataflowGraph
from ..quant import MixedPrecisionConfig
from ..utils import MB, ceil_div
from .runtime import simd_runtime

__all__ = ["MemoryPlan", "plan_memory", "simd_width"]

#: BRAM tile granularity on the target FPGAs (18 Kb blocks, Sec. IV-C).
BRAM_BLOCK_BYTES = 18 * 1024 // 8
#: URAM tile granularity (288 Kb blocks).
URAM_BLOCK_BYTES = 288 * 1024 // 8


@dataclass(frozen=True)
class MemoryPlan:
    """On-chip memory configuration produced by the DAG."""

    mem_a1_bytes: int   # NN filter chunk of MemA
    mem_a2_bytes: int   # VSA vector chunk of MemA
    mem_b_bytes: int    # IFMAP buffer
    mem_c_bytes: int    # output buffer
    cache_bytes: int    # URAM on-chip cache

    @property
    def mem_a_bytes(self) -> int:
        """Merged MemA capacity (A1 + A2, mergeable at runtime)."""
        return self.mem_a1_bytes + self.mem_a2_bytes

    @property
    def total_sram_bytes(self) -> int:
        return self.mem_a_bytes + self.mem_b_bytes + self.mem_c_bytes

    @property
    def bram_blocks(self) -> int:
        """18 Kb BRAM blocks implementing MemA/B/C."""
        return ceil_div(self.total_sram_bytes, BRAM_BLOCK_BYTES)

    @property
    def uram_blocks(self) -> int:
        """288 Kb URAM blocks implementing the cache."""
        return ceil_div(self.cache_bytes, URAM_BLOCK_BYTES)


def _round_up(value: int, granule: int) -> int:
    return ceil_div(max(value, 1), granule) * granule


def plan_memory(
    graph: DataflowGraph,
    precision: MixedPrecisionConfig,
    ifmap_tile_rows: int = 512,
) -> MemoryPlan:
    """Apply the paper's sizing rules to a dataflow graph.

    ``ifmap_tile_rows`` bounds the streaming buffers: MemB holds a working
    tile of the largest layer input (``min(m, ifmap_tile_rows) × k``
    elements) and MemC the matching output tile (``min(m, tile) × n``),
    not whole feature maps — FPGAs cannot hold full NSAI feature maps on
    chip (paper Sec. II-B), which is exactly why MemB/MemC are streaming
    buffers in front of the double-buffered DRAM path.
    """
    nn_bytes = precision.neural.bytes_per_element
    sym_bytes = precision.symbolic.bytes_per_element

    def _elem_bytes(n) -> float:
        return nn_bytes if n.domain.value == "neural" else sym_bytes

    filters = [
        n.gemm.weight_elements * _elem_bytes(n)
        for n in graph.layer_nodes
        if n.gemm is not None
    ]
    vsa_sizes = [
        n.vsa.n * n.vsa.d * sym_bytes for n in graph.vsa_nodes if n.vsa is not None
    ]
    ifmaps = [
        min(n.gemm.m, ifmap_tile_rows) * n.gemm.k * _elem_bytes(n)
        for n in graph.layer_nodes
        if n.gemm is not None
    ]
    outputs = [
        min(n.gemm.m, ifmap_tile_rows) * n.gemm.n * _elem_bytes(n)
        for n in graph.layer_nodes
        if n.gemm is not None
    ]
    outputs += [
        int(n.vsa.n * n.vsa.d * sym_bytes)
        for n in graph.vsa_nodes
        if n.vsa is not None
    ]
    # Element-wise SIMD ops are fused into the array's output drain
    # (Sec. IV-E), so they stream through the same MemC tiles as their
    # producers; standalone SIMD outputs are capped by the largest tile.
    array_tile_cap = max(outputs, default=BRAM_BLOCK_BYTES)
    outputs += [
        min(int(n.op.bytes_written / 4 * _elem_bytes(n)), int(array_tile_cap))
        for n in graph.simd_nodes
    ]

    mem_a1 = _round_up(int(max(filters, default=BRAM_BLOCK_BYTES)), BRAM_BLOCK_BYTES)
    mem_a2 = _round_up(int(max(vsa_sizes, default=BRAM_BLOCK_BYTES)), BRAM_BLOCK_BYTES)
    mem_b = _round_up(int(max(ifmaps, default=BRAM_BLOCK_BYTES)), BRAM_BLOCK_BYTES)
    mem_c = _round_up(int(max(outputs, default=BRAM_BLOCK_BYTES)), BRAM_BLOCK_BYTES)
    cache = _round_up(2 * (mem_a1 + mem_a2 + mem_b + mem_c), URAM_BLOCK_BYTES)
    return MemoryPlan(
        mem_a1_bytes=mem_a1,
        mem_a2_bytes=mem_a2,
        mem_b_bytes=mem_b,
        mem_c_bytes=mem_c,
        cache_bytes=cache,
    )


def simd_width(
    graph: DataflowGraph,
    array_runtime_cycles: int,
    array_node_cycles: dict[str, int] | None = None,
    candidates: tuple[int, ...] = (16, 32, 64, 128, 256, 512),
    slack_fraction: float = 0.02,
) -> int:
    """Smallest SIMD width that hides element-wise latency (paper rule).

    SIMD ops that directly consume an array op are *fused* into its output
    drain: they are hidden when they finish within the producer's own
    cycles (line-rate processing). Ops without an array producer must fit
    in a small slack budget (``slack_fraction`` of the array runtime).
    "SIMD size is minimized such that latency of concurrent elem-wise /
    vector reduction operations can be hidden" (Sec. V-C).
    """
    if array_runtime_cycles <= 0:
        raise ConfigError("array_runtime_cycles must be positive")
    array_node_cycles = array_node_cycles or {}
    slack = max(1, int(array_runtime_cycles * slack_fraction))

    required = min(candidates)
    for node in graph.simd_nodes:
        producer_cycles = [
            array_node_cycles[p]
            for p in graph.predecessors(node.name)
            if p in array_node_cycles
        ]
        budget = max(producer_cycles) if producer_cycles else slack
        fitted = None
        for width in sorted(candidates):
            if simd_runtime(node.op.flops, width) <= budget:
                fitted = width
                break
        required = max(required, fitted if fitted is not None else max(candidates))
    return required


def footprint_report(graph: DataflowGraph, precision: MixedPrecisionConfig) -> dict[str, float]:
    """Convenience rollup (MB) used by benches and docs."""
    plan = plan_memory(graph, precision)
    return {
        "MemA1_MB": plan.mem_a1_bytes / MB,
        "MemA2_MB": plan.mem_a2_bytes / MB,
        "MemB_MB": plan.mem_b_bytes / MB,
        "MemC_MB": plan.mem_c_bytes / MB,
        "Cache_MB": plan.cache_bytes / MB,
    }
