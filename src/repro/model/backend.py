"""Pluggable evaluation backends: the DSE's cost-model seam.

Every latency number the flow produces used to come from one place —
the analytical Eqs. 1-5 of :mod:`repro.model.runtime` (and their batched
twins in :mod:`repro.model.batch`), hard-wired into the DSE engine, the
Phase II refiner, and ``NSFlow``. This module extracts that dependency
into an explicit protocol so *how a design is priced* becomes a
first-class, swappable decision:

* :class:`EvaluationBackend` — the protocol: given a workload's node
  sets (``R_l`` GEMM layers, ``R_v`` VSA nodes) and an AdArray
  geometry/partition, return total and per-node cycle counts plus a
  :class:`CycleBreakdown` (compute, fill/drain, DRAM, overlap);
* :class:`AnalyticBackend` — the paper's analytical models, repackaged.
  This is the default and is **byte-identical** to the pre-seam engine:
  the scalar reference scan, the batched NumPy kernels, and the monotone
  partition bisection all live behind :meth:`~AnalyticBackend.
  score_geometry` exactly as they did inside ``dse/engine.py``;
* :class:`ScheduleBackend` — a memory-aware, event-driven per-node
  timeline. It composes the scheduling discipline of
  :class:`repro.arch.controller.Controller` (per-unit serialization,
  compute/transfer overlap), the double-buffer prefetch semantics of
  :class:`repro.arch.memory.DoubleBufferedMemory` (one transfer in
  flight ahead of compute per unit), and the AXI bandwidth pipe of
  :class:`repro.arch.dram.DramModel` — so the DSE can rank designs by
  end-to-end time (compute *plus* non-hidden memory traffic) rather
  than compute-only cycles.

Contract (enforced by ``tests/model/test_backend.py``):

* ``AnalyticBackend`` equals the scalar models of
  :mod:`repro.model.runtime` bit for bit on any workload/geometry;
* ``ScheduleBackend`` totals are >= the analytic compute cycles for the
  same design point (memory traffic can only add time), and the
  ``overlap`` component never exceeds what the DRAM model could have
  transferred (``overlap <= dram``) nor the compute it hid under
  (``overlap <= compute + fill_drain``);
* for every backend, ``total == compute + fill_drain + dram - overlap``.

The backend choice is **result-affecting** — unlike ``--jobs`` or
``--partition-search`` it changes which design wins — so it joins the
artifact-cache key (:mod:`repro.flow.artifacts`) and is recorded in
every :class:`~repro.dse.engine.DseReport`.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from ..errors import ConfigError
from ..nn.gemm import GemmDims
from ..trace.opnode import VsaDims
from ..utils import ceil_div
from .batch import (
    bisect_uniform_partition,
    dense_uniform_partition,
    fits_int64_domain,
    nn_total_runtime_vec,
    sequential_runtime_batch,
    vsa_total_runtime_vec,
)
from .cache import cached_workload_arrays
from .runtime import (
    layer_runtime,
    nn_total_runtime,
    parallel_runtime,
    sequential_runtime,
    vsa_node_runtime,
    vsa_streaming_latency,
    vsa_total_runtime,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: ``repro.arch`` pulls in the controller,
    # which imports ``repro.dse`` — a package that imports this module.
    from ..arch.dram import DramModel

__all__ = [
    "BackendInfo",
    "CycleBreakdown",
    "GeometryScore",
    "DesignEvaluation",
    "EvaluationBackend",
    "AnalyticBackend",
    "ScheduleBackend",
    "EVALUATION_BACKENDS",
    "backend_version",
    "make_backend",
]


@dataclass(frozen=True)
class BackendInfo:
    """Identity tag recorded in reports and artifacts: name + version.

    ``version`` is bumped whenever a backend's pricing changes for
    identical inputs, so artifacts are self-describing about the cost
    model that produced them.
    """

    name: str
    version: str

    def __str__(self) -> str:
        return f"{self.name} v{self.version}"


@dataclass(frozen=True)
class CycleBreakdown:
    """Where a design's latency goes, in cycles.

    * ``compute`` — steady-state MAC/streaming work on the array;
    * ``fill_drain`` — systolic pipeline fill and drain skew (the
      ``2H + W - 2`` / ``3H - 1`` per-pass terms of Eqs. 1 and 3-4);
    * ``dram`` — total DRAM channel busy cycles (AXI bursts);
    * ``overlap`` — cycles hidden by concurrency: DRAM transfers under
      compute (double buffering) and, in parallel mode, the slower
      side's shadow over the faster (inter-loop parallelism).

    The components always satisfy
    ``total == compute + fill_drain + dram - overlap``.
    """

    compute: int
    fill_drain: int
    dram: int
    overlap: int
    total: int

    def __post_init__(self) -> None:
        if min(self.compute, self.fill_drain, self.dram, self.overlap) < 0:
            raise ConfigError(f"negative breakdown component in {self!r}")
        if self.total != self.compute + self.fill_drain + self.dram - self.overlap:
            raise ConfigError(
                f"breakdown identity violated: total {self.total} != "
                f"{self.compute} + {self.fill_drain} + {self.dram} "
                f"- {self.overlap}"
            )


@dataclass(frozen=True)
class GeometryScore:
    """One geometry's Phase I score, backend-agnostic.

    The fields mirror :class:`repro.dse.engine.GeometryEval` minus the
    candidate index (which belongs to the engine's enumeration, not the
    cost model): best static partition, sequential fallback, and the
    logical/priced design-point counters.
    """

    t_sequential: int
    t_parallel: int
    nl_bar: int
    nv_bar: int
    evaluated: int
    probes: int


@dataclass(frozen=True)
class DesignEvaluation:
    """A backend's full pricing of one instantiated design.

    ``node_cycles`` maps node name to the cycles attributable to that
    node on its execution unit — compute plus fill/drain, plus any
    non-overlapped spill stall under the schedule backend. Waiting time
    (dependencies, exposed transfers before the node starts) is
    excluded, so the values are comparable across backends.
    """

    backend: BackendInfo
    breakdown: CycleBreakdown
    node_cycles: dict[str, int] = field(repr=False, default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return self.breakdown.total

    def latency_s(self, clock_mhz: float) -> float:
        return self.breakdown.total / (clock_mhz * 1e6)


class EvaluationBackend(abc.ABC):
    """Protocol every cost-model backend implements.

    A backend prices design points from the workload's cost dimensions
    alone — ``layers`` (``R_l`` GEMM dims) and ``vsa_nodes`` (``R_v``
    VSA dims) — so the DSE never touches a concrete model again. The
    default method implementations express everything through
    :meth:`sequential_cycles` / :meth:`parallel_cycles`; backends
    override them when they have a faster (or batched) path, provided
    results stay identical to their own reference pricing.

    Backends must be picklable: the engine ships them to process-pool
    workers for ``jobs > 1`` sweeps.
    """

    #: Registry/report identity. Subclasses set both.
    name: ClassVar[str] = ""
    version: ClassVar[str] = ""

    @property
    def info(self) -> BackendInfo:
        return BackendInfo(name=self.name, version=self.version)

    # -- pricing primitives ----------------------------------------------------

    @abc.abstractmethod
    def sequential_cycles(
        self,
        h: int,
        w: int,
        n_sub: int,
        layers: Sequence[GemmDims],
        vsa_nodes: Sequence[VsaDims],
    ) -> int:
        """Total cycles of the sequential schedule (NN then VSA, whole array)."""

    @abc.abstractmethod
    def parallel_cycles(
        self,
        h: int,
        w: int,
        nl: Sequence[int],
        nv: Sequence[int],
        layers: Sequence[GemmDims],
        vsa_nodes: Sequence[VsaDims],
    ) -> int:
        """Total cycles of the parallel schedule under partition ``(Nl, Nv)``."""

    def partition_pricer(
        self,
        h: int,
        w: int,
        layers: Sequence[GemmDims],
        vsa_nodes: Sequence[VsaDims],
    ) -> Callable[[Sequence[int], Sequence[int]], int]:
        """A repeat-pricing closure for one geometry (Phase II's shape).

        The refinement loop prices thousands of partition vectors at a
        fixed ``(H, W)``; backends may return a closure that amortizes
        per-geometry setup (the analytic backend precomputes its
        dimension arrays here).
        """
        return lambda nl, nv: self.parallel_cycles(h, w, nl, nv, layers, vsa_nodes)

    # -- geometry scoring (Phase I's shape) ------------------------------------

    def score_geometry(
        self,
        h: int,
        w: int,
        n_sub: int,
        layers: tuple[GemmDims, ...],
        vsa_nodes: tuple[VsaDims, ...],
        search: str = "dense",
    ) -> GeometryScore:
        """Best static split + sequential fallback for one geometry.

        The default implementation is the reference semantics every
        override must reproduce: scan ``N̄l`` ascending through
        :meth:`parallel_cycles` with strict-``<`` updates (first wins on
        ties). ``search`` is a strategy hint; backends without a faster
        strategy ignore it.
        """
        t_seq = int(self.sequential_cycles(h, w, n_sub, layers, vsa_nodes))
        evaluated = 1
        if vsa_nodes:
            best: tuple[int, int, int] | None = None
            nl_vec = [0] * len(layers)
            nv_vec = [0] * len(vsa_nodes)
            for nl_bar in range(1, n_sub):
                nv_bar = n_sub - nl_bar
                for i in range(len(nl_vec)):
                    nl_vec[i] = nl_bar
                for j in range(len(nv_vec)):
                    nv_vec[j] = nv_bar
                t_para = self.parallel_cycles(
                    h, w, nl_vec, nv_vec, layers, vsa_nodes
                )
                evaluated += 1
                if best is None or t_para < best[0]:
                    best = (int(t_para), nl_bar, nv_bar)
            assert best is not None  # n_sub >= 2 guarantees one iteration
            t_par, nl_bar, nv_bar = best
        else:
            # No VSA nodes: "parallel" degenerates to whole-array NN.
            t_par, nl_bar, nv_bar = t_seq, n_sub, 0
        return GeometryScore(
            t_sequential=t_seq, t_parallel=t_par,
            nl_bar=nl_bar, nv_bar=nv_bar,
            evaluated=evaluated, probes=evaluated,
        )

    def score_geometries(
        self,
        geometries: Sequence[tuple[int, int, int]],
        layers: tuple[GemmDims, ...],
        vsa_nodes: tuple[VsaDims, ...],
        search: str = "dense",
    ) -> list[GeometryScore]:
        """Score a batch of ``(H, W, N)`` geometries (one pool work unit)."""
        return [
            self.score_geometry(h, w, n, layers, vsa_nodes, search)
            for h, w, n in geometries
        ]

    # -- full-design pricing ---------------------------------------------------

    @abc.abstractmethod
    def evaluate_design(
        self,
        h: int,
        w: int,
        n_sub: int,
        mode: str,
        nl: Sequence[int],
        nv: Sequence[int],
        layers: Sequence[GemmDims],
        vsa_nodes: Sequence[VsaDims],
        layer_names: Sequence[str] | None = None,
        vsa_names: Sequence[str] | None = None,
        mem_c_bytes: int | None = None,
    ) -> DesignEvaluation:
        """Price one instantiated design with a full latency breakdown.

        ``mode`` is ``"sequential"`` or ``"parallel"``; ``nl``/``nv``
        are the per-node partitions the design deploys (sequential mode
        ignores them and runs every node on the whole array).
        ``mem_c_bytes``, when given, bounds the output buffer — outputs
        exceeding it pay a non-overlapped spill (schedule backend only).
        """


def _node_names(
    prefix: str, dims: Sequence, names: Sequence[str] | None
) -> list[str]:
    if names is not None:
        if len(names) != len(dims):
            raise ConfigError(
                f"{prefix} name count {len(names)} != node count {len(dims)}"
            )
        return list(names)
    return [f"{prefix}[{i}]" for i in range(len(dims))]


def _check_mode(mode: str) -> None:
    if mode not in ("sequential", "parallel"):
        raise ConfigError(f"unknown execution mode {mode!r}")


def _sequential_allocs(n_sub: int, count: int) -> list[int]:
    return [n_sub] * count


#: ``auto`` threshold shared with the engine: at or below this many
#: sub-arrays a vectorized dense pass beats the bisection's per-probe
#: NumPy dispatch overhead.
AUTO_DENSE_MAX_N = 16


class AnalyticBackend(EvaluationBackend):
    """The paper's Eqs. 1-5 behind the protocol — the default backend.

    Pricing is pure compute-cycle arithmetic: no DRAM term, no transfer
    overlap. ``score_geometry`` carries the engine's entire historical
    search machinery — the scalar reference scan (``dense``), the
    monotone crossing-point bisection over the batched int64 kernels
    (``bisect``), and the per-geometry ``auto`` choice — and every
    strategy returns bit-identical scores (the contract
    ``bench_dse_hotpath.py --check-only`` guards in CI).
    """

    name: ClassVar[str] = "analytic"
    version: ClassVar[str] = "1"

    def sequential_cycles(self, h, w, n_sub, layers, vsa_nodes) -> int:
        return int(sequential_runtime(h, w, n_sub, layers, vsa_nodes))

    def parallel_cycles(self, h, w, nl, nv, layers, vsa_nodes) -> int:
        return int(parallel_runtime(h, w, nl, nv, layers, vsa_nodes))

    def partition_pricer(self, h, w, layers, vsa_nodes):
        """Vectorized repeat pricing over precomputed dimension arrays.

        Dimensions big enough to wrap int64 fall back to the scalar
        models (bit-identical integers either way).
        """
        layers = tuple(layers)
        vsa_nodes = tuple(vsa_nodes)
        arrays = cached_workload_arrays(layers, vsa_nodes)
        if fits_int64_domain(arrays, h, h, w, w):
            return lambda nl, nv: max(
                nn_total_runtime_vec(h, w, nl, arrays),
                vsa_total_runtime_vec(h, w, nv, arrays),
            )
        return lambda nl, nv: max(
            nn_total_runtime(h, w, nl, layers),
            vsa_total_runtime(h, w, nv, vsa_nodes),
        )

    # -- Phase I machinery (moved verbatim from dse/engine.py) -----------------

    def score_geometry(
        self, h, w, n_sub, layers, vsa_nodes, search="dense",
        *, arrays=None, t_seq=None,
    ) -> GeometryScore:
        """Score one geometry exactly as the serial Phase I sweep does.

        ``search == "dense"`` is the reference path: the inner
        static-partition loop runs ``N̄l`` ascending through the scalar
        models with strict-``<`` updates, so the per-geometry winner
        matches the historical serial sweep bit for bit. The batched
        paths (``bisect`` directly, ``auto`` per geometry) produce the
        identical triple via the monotone crossing-point search — or one
        vectorized dense pass when ``N`` is small enough that probe
        dispatch overhead would dominate.
        """
        if search == "dense":
            # The base-class reference scan through this backend's
            # primitives *is* the historical serial Phase I sweep: one
            # strict-< first-wins loop, kept in exactly one place.
            return super().score_geometry(h, w, n_sub, layers, vsa_nodes)
        else:
            if arrays is None:
                arrays = cached_workload_arrays(tuple(layers), tuple(vsa_nodes))
            if not fits_int64_domain(arrays, h, h, w, w):
                # Pathologically large dimensions could wrap the int64
                # kernels; the scalar reference path handles any
                # magnitude and returns the identical result.
                return self.score_geometry(h, w, n_sub, layers, vsa_nodes)
            if t_seq is None:
                t_seq = int(
                    sequential_runtime_batch([h], [w], [n_sub], arrays)[0]
                )
            if vsa_nodes:
                if search == "bisect" or n_sub > AUTO_DENSE_MAX_N:
                    found = bisect_uniform_partition(h, w, n_sub, arrays)
                else:
                    found = dense_uniform_partition(h, w, n_sub, arrays)
                t_par, nl_bar, nv_bar = (
                    found.t_parallel, found.nl_bar, found.nv_bar
                )
                probes = found.probes + 1          # + the sequential schedule
                evaluated = n_sub                  # 1 sequential + (N − 1) splits
            else:
                t_par, nl_bar, nv_bar = t_seq, n_sub, 0
                probes = 1
                evaluated = 1
        return GeometryScore(
            t_sequential=t_seq, t_parallel=t_par,
            nl_bar=nl_bar, nv_bar=nv_bar,
            evaluated=evaluated, probes=probes,
        )

    def score_geometries(
        self, geometries, layers, vsa_nodes, search="dense",
    ) -> list[GeometryScore]:
        """Score a batch under one strategy, with a shared batched precompute.

        The batched strategies pre-evaluate every geometry's sequential
        runtime in a single NumPy pass over the whole batch
        (``G × (L + V)`` elementwise ops) before running the
        per-geometry partition search.
        """
        geometries = list(geometries)
        if search == "dense" or not geometries:
            return [
                self.score_geometry(h, w, n, layers, vsa_nodes)
                for h, w, n in geometries
            ]
        arrays = cached_workload_arrays(tuple(layers), tuple(vsa_nodes))
        hs = np.array([g[0] for g in geometries], dtype=np.int64)
        ws = np.array([g[1] for g in geometries], dtype=np.int64)
        if not fits_int64_domain(
            arrays, int(hs.min()), int(hs.max()), int(ws.min()), int(ws.max())
        ):
            # The box's high corner could wrap int64: skip the batched
            # sequential precompute and let each geometry's own headroom
            # check keep the batched path where it individually fits,
            # reverting only the unsafe geometries to the scalar scan.
            return [
                self.score_geometry(
                    h, w, n, layers, vsa_nodes, search=search, arrays=arrays
                )
                for h, w, n in geometries
            ]
        t_seq = sequential_runtime_batch(
            hs, ws,
            np.array([g[2] for g in geometries], dtype=np.int64),
            arrays,
        )
        return [
            self.score_geometry(
                h, w, n, layers, vsa_nodes, search=search, arrays=arrays,
                t_seq=int(t_seq[i]),
            )
            for i, (h, w, n) in enumerate(geometries)
        ]

    # -- full-design pricing ---------------------------------------------------

    @staticmethod
    def _layer_split(h: int, w: int, alloc: int, dims: GemmDims) -> tuple[int, int]:
        """Eq. 1 split into (steady compute, fill/drain) cycles."""
        passes = ceil_div(ceil_div(dims.n, alloc), h) * ceil_div(dims.k, w)
        total = layer_runtime(h, w, alloc, dims)
        fill = (2 * h + w - 2) * passes
        return total - fill, fill

    @staticmethod
    def _vsa_split(
        h: int, w: int, alloc: int, dims: VsaDims, mapping: str
    ) -> tuple[int, int]:
        """Eqs. 3/4 split into (steady compute, fill/drain) cycles."""
        t = vsa_streaming_latency(h, dims.d)
        if mapping == "spatial":
            passes = dims.n * ceil_div(dims.d, w * h * alloc)
        else:
            passes = ceil_div(dims.n, w) * ceil_div(dims.d, h * alloc)
        total = passes * t
        fill = (3 * h - 1) * passes
        return total - fill, fill

    @staticmethod
    def _vsa_loop_mapping(
        h: int, w: int, nv: Sequence[int], vsa_nodes: Sequence[VsaDims]
    ) -> str:
        """The whole-loop mapping Eq. 5 picks (ties go to spatial)."""
        spatial = sum(
            vsa_node_runtime(h, w, a, d, "spatial")
            for a, d in zip(nv, vsa_nodes)
        )
        temporal = sum(
            vsa_node_runtime(h, w, a, d, "temporal")
            for a, d in zip(nv, vsa_nodes)
        )
        return "spatial" if spatial <= temporal else "temporal"

    def evaluate_design(
        self, h, w, n_sub, mode, nl, nv, layers, vsa_nodes,
        layer_names=None, vsa_names=None, mem_c_bytes=None,
    ) -> DesignEvaluation:
        _check_mode(mode)
        sequential = mode == "sequential"
        l_names = _node_names("layer", layers, layer_names)
        v_names = _node_names("vsa", vsa_nodes, vsa_names)
        nl = _sequential_allocs(n_sub, len(layers)) if sequential else list(nl)
        nv = _sequential_allocs(n_sub, len(vsa_nodes)) if sequential else list(nv)
        mapping = (
            self._vsa_loop_mapping(h, w, nv, vsa_nodes) if vsa_nodes else "spatial"
        )
        node_cycles: dict[str, int] = {}
        nn_compute = nn_fill = 0
        for name, alloc, dims in zip(l_names, nl, layers):
            compute, fill = self._layer_split(h, w, alloc, dims)
            node_cycles[name] = compute + fill
            nn_compute += compute
            nn_fill += fill
        vsa_compute = vsa_fill = 0
        for name, alloc, dims in zip(v_names, nv, vsa_nodes):
            compute, fill = self._vsa_split(h, w, alloc, dims, mapping)
            node_cycles[name] = compute + fill
            vsa_compute += compute
            vsa_fill += fill
        t_nn = nn_compute + nn_fill
        t_vsa = vsa_compute + vsa_fill
        if sequential:
            total = t_nn + t_vsa
            overlap = 0
        else:
            # Inter-loop parallelism hides the faster side entirely.
            total = max(t_nn, t_vsa)
            overlap = min(t_nn, t_vsa)
        return DesignEvaluation(
            backend=self.info,
            breakdown=CycleBreakdown(
                compute=nn_compute + vsa_compute,
                fill_drain=nn_fill + vsa_fill,
                dram=0,
                overlap=overlap,
                total=total,
            ),
            node_cycles=node_cycles,
        )


@dataclass(frozen=True)
class _NodeTask:
    """One node's demand on its unit and the DRAM channel."""

    name: str
    compute: int
    fill: int
    in_bytes: int
    out_bytes: int


class ScheduleBackend(EvaluationBackend):
    """Memory-aware event-driven timeline over the ``arch/`` models.

    Pricing walks the workload's nodes exactly as
    :class:`repro.arch.controller.Controller` schedules a graph: each
    execution unit (the NN partition, the VSA partition — or the whole
    array in sequential mode) runs its nodes in order; every node's
    operands arrive over the :class:`~repro.arch.dram.DramModel` AXI
    pipe; and the double-buffered memories
    (:class:`~repro.arch.memory.DoubleBufferedMemory` semantics) let
    exactly one prefetch ride ahead of compute per unit — a transfer for
    node ``i`` may start once the channel is free *and* node ``i-1`` has
    begun computing (its shadow bank is then free to fill). Transfers
    from all units serialize on the single DRAM channel; compute starts
    at ``max(unit free, operands landed)``.

    Divergence from :class:`AnalyticBackend` is therefore exactly the
    non-hidden memory time: designs whose compute dwarfs their traffic
    price identically (all DRAM cycles overlap), while memory-bound
    designs pay the exposed transfer tail — which is what re-ranks
    geometries the analytic model sees as ties.

    Parameters are plain value objects so instances pickle cleanly into
    process-pool workers: bytes-per-element for the two workload halves
    (from a :class:`~repro.quant.MixedPrecisionConfig`) and the DRAM
    model. ``version`` tags the pricing semantics for artifacts.
    """

    name: ClassVar[str] = "schedule"
    version: ClassVar[str] = "1"

    def __init__(
        self,
        neural_bytes: float = 1.0,
        symbolic_bytes: float = 0.5,
        dram: "DramModel | None" = None,
    ):
        if neural_bytes <= 0 or symbolic_bytes <= 0:
            raise ConfigError("bytes-per-element must be positive")
        if dram is None:
            from ..arch.dram import DramModel
            dram = DramModel()
        self.neural_bytes = neural_bytes
        self.symbolic_bytes = symbolic_bytes
        self.dram = dram

    @classmethod
    def from_precision(
        cls, precision, dram: "DramModel | None" = None
    ) -> "ScheduleBackend":
        """Build from a :class:`~repro.quant.MixedPrecisionConfig`."""
        return cls(
            neural_bytes=precision.neural.bytes_per_element,
            symbolic_bytes=precision.symbolic.bytes_per_element,
            dram=dram,
        )

    def __eq__(self, other) -> bool:
        return (
            type(other) is type(self)
            and (self.neural_bytes, self.symbolic_bytes, self.dram)
            == (other.neural_bytes, other.symbolic_bytes, other.dram)
        )

    def __hash__(self) -> int:
        return hash((type(self), self.neural_bytes, self.symbolic_bytes, self.dram))

    # -- per-node demand -------------------------------------------------------

    def _layer_task(
        self, h: int, w: int, alloc: int, dims: GemmDims, name: str
    ) -> _NodeTask:
        compute, fill = AnalyticBackend._layer_split(h, w, alloc, dims)
        in_elems = dims.n * dims.k + dims.m * dims.k     # weights + ifmap
        out_elems = dims.m * dims.n                      # ofmap
        return _NodeTask(
            name=name, compute=compute, fill=fill,
            in_bytes=int(in_elems * self.neural_bytes),
            out_bytes=int(out_elems * self.neural_bytes),
        )

    def _vsa_task(
        self, h: int, w: int, alloc: int, dims: VsaDims, mapping: str, name: str
    ) -> _NodeTask:
        compute, fill = AnalyticBackend._vsa_split(h, w, alloc, dims, mapping)
        in_elems = dims.n * dims.d + dims.d              # operands + stationary
        out_elems = dims.n * dims.d
        return _NodeTask(
            name=name, compute=compute, fill=fill,
            in_bytes=int(in_elems * self.symbolic_bytes),
            out_bytes=int(out_elems * self.symbolic_bytes),
        )

    def _streams(
        self, h, w, nl, nv, layers, vsa_nodes,
        layer_names=None, vsa_names=None,
    ) -> tuple[list[_NodeTask], list[_NodeTask]]:
        l_names = _node_names("layer", layers, layer_names)
        v_names = _node_names("vsa", vsa_nodes, vsa_names)
        mapping = (
            AnalyticBackend._vsa_loop_mapping(h, w, nv, vsa_nodes)
            if vsa_nodes else "spatial"
        )
        nn = [
            self._layer_task(h, w, alloc, dims, name)
            for name, alloc, dims in zip(l_names, nl, layers)
        ]
        vsa = [
            self._vsa_task(h, w, alloc, dims, mapping, name)
            for name, alloc, dims in zip(v_names, nv, vsa_nodes)
        ]
        return nn, vsa

    # -- the event-driven timeline ---------------------------------------------

    def _timeline(
        self,
        streams: Sequence[Sequence[_NodeTask]],
        mem_c_bytes: int | None = None,
    ) -> tuple[CycleBreakdown, dict[str, int]]:
        """Run the per-unit node streams against one shared DRAM channel.

        Deterministic event order: among units with work remaining, the
        one whose unit becomes free earliest issues next (ties to the
        lower unit index — NN before VSA, matching the controller's
        topological walk of NN producers before their VSA consumers).
        Returns the breakdown and per-node unit-occupancy cycle counts
        (compute + fill + any spill stall; waiting time excluded).
        """
        ptrs = [0] * len(streams)
        unit_free = [0] * len(streams)
        prev_start = [0] * len(streams)
        dram_free = 0
        compute_total = fill_total = dram_total = 0
        node_cycles: dict[str, int] = {}
        while True:
            live = [i for i, s in enumerate(streams) if ptrs[i] < len(s)]
            if not live:
                break
            u = min(live, key=lambda i: (unit_free[i], i))
            task = streams[u][ptrs[u]]
            ptrs[u] += 1
            # Double buffering: one prefetch in flight per unit — the
            # shadow bank frees when the previous node starts computing.
            t_in = self.dram.transfer_cycles(task.in_bytes)
            xfer_start = max(dram_free, prev_start[u])
            xfer_done = xfer_start + t_in
            dram_free = xfer_done
            start = max(unit_free[u], xfer_done)
            duration = task.compute + task.fill
            # Outputs drain through MemC. The portion that fits the
            # buffer double-buffers out at line rate (channel busy that
            # may hide under the next node's compute); the overflow
            # past capacity cannot be double-buffered, so its transfer
            # stalls the unit (the controller's spill rule). Each
            # output byte is priced exactly once.
            spill = 0
            drain_bytes = task.out_bytes
            if mem_c_bytes is not None and task.out_bytes > mem_c_bytes:
                spill = self.dram.transfer_cycles(task.out_bytes - mem_c_bytes)
                drain_bytes = mem_c_bytes
            end = start + duration
            t_out = self.dram.transfer_cycles(drain_bytes)
            dram_free = max(dram_free, start) + t_out
            if spill:
                # The spill transfer needs both the finished output and
                # a free channel; the unit stalls until it completes.
                dram_free = max(dram_free, end) + spill
                end = dram_free
            prev_start[u] = start
            unit_free[u] = end
            node_cycles[task.name] = end - start
            compute_total += task.compute
            fill_total += task.fill
            dram_total += t_in + t_out + spill
        total = max(max(unit_free), dram_free) if streams else 0
        busy = compute_total + fill_total + dram_total
        overlap = max(0, busy - total)
        return (
            CycleBreakdown(
                compute=compute_total,
                fill_drain=fill_total,
                dram=dram_total,
                overlap=overlap,
                total=busy - overlap,
            ),
            node_cycles,
        )

    # -- protocol --------------------------------------------------------------

    def sequential_cycles(self, h, w, n_sub, layers, vsa_nodes) -> int:
        nn, vsa = self._streams(
            h, w,
            _sequential_allocs(n_sub, len(layers)),
            _sequential_allocs(n_sub, len(vsa_nodes)),
            layers, vsa_nodes,
        )
        breakdown, _ = self._timeline([list(nn) + list(vsa)])
        return breakdown.total

    def parallel_cycles(self, h, w, nl, nv, layers, vsa_nodes) -> int:
        nn, vsa = self._streams(h, w, nl, nv, layers, vsa_nodes)
        breakdown, _ = self._timeline([nn, vsa])
        return breakdown.total

    def evaluate_design(
        self, h, w, n_sub, mode, nl, nv, layers, vsa_nodes,
        layer_names=None, vsa_names=None, mem_c_bytes=None,
    ) -> DesignEvaluation:
        _check_mode(mode)
        sequential = mode == "sequential"
        nl = _sequential_allocs(n_sub, len(layers)) if sequential else list(nl)
        nv = _sequential_allocs(n_sub, len(vsa_nodes)) if sequential else list(nv)
        nn, vsa = self._streams(
            h, w, nl, nv, layers, vsa_nodes, layer_names, vsa_names
        )
        streams = [list(nn) + list(vsa)] if sequential else [nn, vsa]
        breakdown, node_cycles = self._timeline(streams, mem_c_bytes)
        return DesignEvaluation(
            backend=self.info, breakdown=breakdown, node_cycles=node_cycles
        )


#: Registered backend names, in CLI-choices order. ``analytic`` is the
#: default everywhere and byte-identical to the pre-seam engine.
EVALUATION_BACKENDS: tuple[str, ...] = ("analytic", "schedule")

_BACKEND_CLASSES: dict[str, type[EvaluationBackend]] = {
    AnalyticBackend.name: AnalyticBackend,
    ScheduleBackend.name: ScheduleBackend,
}


def backend_version(name: str) -> str:
    """The registered backend's pricing-semantics version tag.

    The artifact cache keys on ``(name, version)`` so a backend whose
    pricing changes (version bump) invalidates exactly its own cached
    scenarios — no blanket epoch bump required.
    """
    try:
        return _BACKEND_CLASSES[name].version
    except KeyError:
        raise ConfigError(
            f"unknown evaluation backend {name!r}; "
            f"available: {', '.join(EVALUATION_BACKENDS)}"
        ) from None


def make_backend(
    name: str,
    *,
    precision=None,
    clock_mhz: float | None = None,
) -> EvaluationBackend:
    """Instantiate a backend by registry name.

    ``precision`` (a :class:`~repro.quant.MixedPrecisionConfig`) and
    ``clock_mhz`` parameterize the schedule backend's byte scaling and
    DRAM pipe; the analytic backend ignores both.
    """
    if name == "analytic":
        return AnalyticBackend()
    if name == "schedule":
        from ..arch.dram import DramModel

        dram = DramModel(clock_mhz=clock_mhz) if clock_mhz is not None else None
        if precision is not None:
            return ScheduleBackend.from_precision(precision, dram=dram)
        return ScheduleBackend(dram=dram)
    raise ConfigError(
        f"unknown evaluation backend {name!r}; "
        f"available: {', '.join(EVALUATION_BACKENDS)}"
    )
