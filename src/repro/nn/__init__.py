"""Forward-only neural-network substrate (numpy).

The neural halves of the paper's workloads are CNNs (ResNet-18 for NVSA and
LVRF, compact CNNs for MIMONet and PrAE — Table I). The DAG frontend only
needs their operator-level structure: per-layer GEMM dimensions ``(m, n, k)``
after im2col lowering, FLOPs, and byte traffic. This package provides real
(numpy) forward implementations of the layers plus that lowering, so traces
are generated from genuine executions rather than hand-written op lists.
"""

from .gemm import GemmDims, conv2d_gemm_dims, im2col, linear_gemm_dims
from .layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Softmax,
)
from .resnet import ResNet, build_resnet18, build_small_cnn

__all__ = [
    "GemmDims",
    "im2col",
    "conv2d_gemm_dims",
    "linear_gemm_dims",
    "Layer",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "Softmax",
    "Flatten",
    "Add",
    "Sequential",
    "ResNet",
    "build_resnet18",
    "build_small_cnn",
]
