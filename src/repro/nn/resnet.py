"""ResNet-18 and compact CNN frontends.

NVSA and LVRF use a ResNet-18 perception frontend; MIMONet and PrAE use
compact CNNs (Table I). Networks here support two modes:

* ``forward(x)`` — a real numpy forward pass (used by tests and the
  functional examples at small resolutions);
* ``describe(input_shape)`` — structural walk that yields every operator
  with its dependencies, shapes, GEMM lowering and FLOPs *without*
  executing. The tracer uses this to emit Listing-1-style traces at the
  paper's full resolutions (e.g. batch 16 × 160×160 for NVSA) where a
  numpy forward pass would be needlessly slow: the DAG frontend only
  consumes the structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ShapeError
from .gemm import GemmDims
from .layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
)

__all__ = ["LayerOp", "BasicBlock", "ResNet", "build_resnet18", "build_small_cnn"]


@dataclass(frozen=True)
class LayerOp:
    """One operator in a structural network walk."""

    name: str
    kind: str
    input_shape: tuple[int, ...]
    output_shape: tuple[int, ...]
    deps: tuple[str, ...]
    gemm: GemmDims | None = None
    flops: int = 0
    weight_elements: int = 0
    params: dict = field(default_factory=dict)


class BasicBlock:
    """Standard two-conv residual block (optionally downsampling)."""

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: np.random.Generator | int | None = None,
    ):
        self.name = name
        self.conv1 = Conv2d(
            f"{name}.conv1", in_channels, out_channels, kernel=3,
            stride=stride, padding=1, bias=False, rng=rng,
        )
        self.bn1 = BatchNorm2d(f"{name}.bn1", out_channels)
        self.relu1 = ReLU(f"{name}.relu1")
        self.conv2 = Conv2d(
            f"{name}.conv2", out_channels, out_channels, kernel=3,
            stride=1, padding=1, bias=False, rng=rng,
        )
        self.bn2 = BatchNorm2d(f"{name}.bn2", out_channels)
        self.downsample: Conv2d | None = None
        self.downsample_bn: BatchNorm2d | None = None
        if stride != 1 or in_channels != out_channels:
            self.downsample = Conv2d(
                f"{name}.down", in_channels, out_channels, kernel=1,
                stride=stride, padding=0, bias=False, rng=rng,
            )
            self.downsample_bn = BatchNorm2d(f"{name}.down_bn", out_channels)
        self.add = Add(f"{name}.add")
        self.relu2 = ReLU(f"{name}.relu2")

    def forward(self, x: np.ndarray) -> np.ndarray:
        identity = x
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        if self.downsample is not None:
            assert self.downsample_bn is not None
            identity = self.downsample_bn(self.downsample(x))
        return self.relu2(self.add.forward(out, identity))

    def describe(self, input_shape: tuple[int, ...], input_name: str) -> list[LayerOp]:
        """Structural walk; the Add depends on both branch tails."""
        ops: list[LayerOp] = []

        def emit(layer: Layer, shape: tuple[int, ...], deps: tuple[str, ...]) -> tuple[str, tuple[int, ...]]:
            out_shape = layer.output_shape(shape)
            ops.append(
                LayerOp(
                    name=layer.name,
                    kind=layer.kind,
                    input_shape=shape,
                    output_shape=out_shape,
                    deps=deps,
                    gemm=layer.gemm_dims(shape),
                    flops=layer.flops(shape),
                    weight_elements=layer.weight_elements(),
                    params=layer.params(),
                )
            )
            return layer.name, out_shape

        n1, s1 = emit(self.conv1, input_shape, (input_name,))
        n2, s2 = emit(self.bn1, s1, (n1,))
        n3, s3 = emit(self.relu1, s2, (n2,))
        n4, s4 = emit(self.conv2, s3, (n3,))
        n5, s5 = emit(self.bn2, s4, (n4,))
        identity_name, identity_shape = input_name, input_shape
        if self.downsample is not None:
            assert self.downsample_bn is not None
            d1, ds1 = emit(self.downsample, input_shape, (input_name,))
            identity_name, identity_shape = emit(self.downsample_bn, ds1, (d1,))
        if identity_shape != s5:
            raise ShapeError(
                f"{self.name}: residual shapes diverge {identity_shape} vs {s5}"
            )
        a_name, a_shape = emit(self.add, s5, (n5, identity_name))
        emit(self.relu2, a_shape, (a_name,))
        return ops

    def weight_elements(self) -> int:
        total = (
            self.conv1.weight_elements()
            + self.bn1.weight_elements()
            + self.conv2.weight_elements()
            + self.bn2.weight_elements()
        )
        if self.downsample is not None:
            assert self.downsample_bn is not None
            total += self.downsample.weight_elements() + self.downsample_bn.weight_elements()
        return total


class ResNet:
    """A ResNet-style CNN assembled from a stem, residual stages and a head."""

    def __init__(
        self,
        name: str,
        stem: list[Layer],
        blocks: list[BasicBlock],
        head: list[Layer],
    ):
        self.name = name
        self.stem = stem
        self.blocks = blocks
        self.head = head

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.stem:
            x = layer(x)
        for block in self.blocks:
            x = block.forward(x)
        for layer in self.head:
            x = layer(x)
        return x

    __call__ = forward

    def describe(self, input_shape: tuple[int, ...], input_name: str = "input") -> list[LayerOp]:
        """Full structural walk in execution order."""
        ops: list[LayerOp] = []
        shape = tuple(input_shape)
        last = input_name
        for layer in self.stem:
            out_shape = layer.output_shape(shape)
            ops.append(
                LayerOp(
                    name=layer.name,
                    kind=layer.kind,
                    input_shape=shape,
                    output_shape=out_shape,
                    deps=(last,),
                    gemm=layer.gemm_dims(shape),
                    flops=layer.flops(shape),
                    weight_elements=layer.weight_elements(),
                    params=layer.params(),
                )
            )
            last, shape = layer.name, out_shape
        for block in self.blocks:
            block_ops = block.describe(shape, last)
            ops.extend(block_ops)
            last, shape = block_ops[-1].name, block_ops[-1].output_shape
        for layer in self.head:
            out_shape = layer.output_shape(shape)
            ops.append(
                LayerOp(
                    name=layer.name,
                    kind=layer.kind,
                    input_shape=shape,
                    output_shape=out_shape,
                    deps=(last,),
                    gemm=layer.gemm_dims(shape),
                    flops=layer.flops(shape),
                    weight_elements=layer.weight_elements(),
                    params=layer.params(),
                )
            )
            last, shape = layer.name, out_shape
        return ops

    def weight_elements(self) -> int:
        total = sum(layer.weight_elements() for layer in self.stem)
        total += sum(block.weight_elements() for block in self.blocks)
        total += sum(layer.weight_elements() for layer in self.head)
        return total

    def gemm_layers(self, input_shape: tuple[int, ...]) -> list[LayerOp]:
        """Only the GEMM-lowered layers (the AdArray NN nodes)."""
        return [op for op in self.describe(input_shape) if op.gemm is not None]


def build_resnet18(
    name: str = "resnet18",
    in_channels: int = 1,
    num_classes: int = 512,
    base_width: int = 64,
    rng: np.random.Generator | int | None = None,
) -> ResNet:
    """The standard 18-layer ResNet used by NVSA/LVRF perception.

    ``num_classes`` is the embedding width feeding the VSA encoder (NVSA
    projects perception features to attribute PMFs, not ImageNet classes).
    """
    stem: list[Layer] = [
        Conv2d(f"{name}.conv1", in_channels, base_width, kernel=7, stride=2,
               padding=3, bias=False, rng=rng),
        BatchNorm2d(f"{name}.bn1", base_width),
        ReLU(f"{name}.relu"),
        MaxPool2d(f"{name}.maxpool", kernel=3, stride=2, padding=1),
    ]
    widths = [base_width, base_width * 2, base_width * 4, base_width * 8]
    blocks: list[BasicBlock] = []
    in_ch = base_width
    for stage, width in enumerate(widths, start=1):
        for b in range(2):
            stride = 2 if stage > 1 and b == 0 else 1
            blocks.append(
                BasicBlock(f"{name}.layer{stage}.{b}", in_ch, width, stride=stride, rng=rng)
            )
            in_ch = width
    head: list[Layer] = [
        AvgPool2d(f"{name}.avgpool"),
        Flatten(f"{name}.flatten"),
        Linear(f"{name}.fc", widths[-1], num_classes, rng=rng),
    ]
    return ResNet(name, stem, blocks, head)


def build_small_cnn(
    name: str = "smallcnn",
    in_channels: int = 1,
    num_classes: int = 128,
    base_width: int = 32,
    depth: int = 4,
    rng: np.random.Generator | int | None = None,
) -> ResNet:
    """A compact plain CNN (conv-bn-relu ×depth) for MIMONet/PrAE frontends."""
    if depth < 1:
        raise ShapeError(f"depth must be >= 1, got {depth}")
    stem: list[Layer] = []
    in_ch = in_channels
    width = base_width
    for i in range(depth):
        stride = 2 if i % 2 == 0 else 1
        stem.append(
            Conv2d(f"{name}.conv{i}", in_ch, width, kernel=3, stride=stride,
                   padding=1, bias=False, rng=rng)
        )
        stem.append(BatchNorm2d(f"{name}.bn{i}", width))
        stem.append(ReLU(f"{name}.relu{i}"))
        in_ch = width
        if i % 2 == 1:
            width *= 2
    head: list[Layer] = [
        AvgPool2d(f"{name}.avgpool"),
        Flatten(f"{name}.flatten"),
        Linear(f"{name}.fc", in_ch, num_classes, rng=rng),
    ]
    return ResNet(name, stem, [], head)
