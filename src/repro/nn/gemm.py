"""GEMM lowering for convolution and linear layers.

The AdArray runs NN layers as weight-stationary systolic GEMMs, so the
frontend's analytical model (paper Eq. 1) describes every layer by its GEMM
dimensions ``d1, d2, d3 = m, n, k``:

* ``m`` — output rows (spatial positions × batch for conv; batch for linear),
* ``n`` — output columns (output channels / features),
* ``k`` — reduction depth (C·kh·kw for conv; input features for linear).

``im2col`` is the standard lowering: each convolution window becomes one row
of an ``(m, k)`` matrix so the convolution is ``im2col(x) @ W.reshape(k, n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError

__all__ = ["GemmDims", "im2col", "conv2d_gemm_dims", "linear_gemm_dims", "conv_output_hw"]


@dataclass(frozen=True)
class GemmDims:
    """GEMM problem size ``(m, n, k)``: ``(m×k) @ (k×n) → (m×n)``."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ShapeError(f"GEMM dims must be positive, got {(self.m, self.n, self.k)}")

    @property
    def flops(self) -> int:
        """Multiply-accumulate FLOPs (2 per MAC)."""
        return 2 * self.m * self.n * self.k

    @property
    def input_elements(self) -> int:
        return self.m * self.k

    @property
    def weight_elements(self) -> int:
        return self.k * self.n

    @property
    def output_elements(self) -> int:
        return self.m * self.n


def conv_output_hw(
    h: int, w: int, kernel: int, stride: int = 1, padding: int = 0
) -> tuple[int, int]:
    """Output spatial dims of a square-kernel convolution."""
    oh = (h + 2 * padding - kernel) // stride + 1
    ow = (w + 2 * padding - kernel) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(
            f"conv produces empty output: input {h}x{w}, kernel {kernel}, "
            f"stride {stride}, padding {padding}"
        )
    return oh, ow


def conv2d_gemm_dims(
    batch: int,
    in_channels: int,
    out_channels: int,
    h: int,
    w: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> GemmDims:
    """GEMM dimensions of a conv layer after im2col lowering."""
    oh, ow = conv_output_hw(h, w, kernel, stride, padding)
    return GemmDims(m=batch * oh * ow, n=out_channels, k=in_channels * kernel * kernel)


def linear_gemm_dims(batch: int, in_features: int, out_features: int) -> GemmDims:
    """GEMM dimensions of a fully-connected layer."""
    return GemmDims(m=batch, n=out_features, k=in_features)


def im2col(
    x: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Lower NCHW input windows into a ``(N·OH·OW, C·kh·kw)`` matrix.

    Column ordering is ``(c, kh, kw)``-major, matching
    ``weight.reshape(out_channels, -1).T`` for NCHW weights.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects NCHW input, got shape {x.shape}")
    n, c, h, w = x.shape
    oh, ow = conv_output_hw(h, w, kernel, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    # Gather windows via stride tricks, then reorder to (N, OH, OW, C, KH, KW).
    s = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kernel * kernel)
    return np.ascontiguousarray(cols)
