"""Forward-only NN layers with shape/FLOP/GEMM introspection.

Each layer both *executes* (numpy forward pass) and *describes itself* to
the NSFlow frontend: output shape, FLOPs, byte traffic, weight element
count, and — for the layers the AdArray runs as systolic GEMMs — the
lowered :class:`~repro.nn.gemm.GemmDims`. Layers that are not GEMMs
(activations, pooling, batch-norm, element-wise adds) map onto the SIMD
unit (paper Sec. IV-E).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ShapeError
from ..utils import make_rng, prod
from .gemm import GemmDims, conv2d_gemm_dims, conv_output_hw, im2col, linear_gemm_dims

__all__ = [
    "Layer",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "Softmax",
    "Flatten",
    "Add",
    "Sequential",
]


class Layer:
    """Base class: a named, stateless-or-weighted forward operator."""

    #: Operator kind tag used by the tracer ("conv2d", "linear", "relu", ...).
    kind: str = "layer"
    #: True when the AdArray executes this layer as a systolic GEMM.
    is_gemm: bool = False

    def __init__(self, name: str):
        self.name = name

    # -- execution ---------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- introspection -----------------------------------------------------

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape produced for a given input shape (no execution)."""
        raise NotImplementedError

    def gemm_dims(self, input_shape: tuple[int, ...]) -> GemmDims | None:
        """Lowered GEMM dims, or ``None`` for non-GEMM (SIMD) layers."""
        return None

    def weight_elements(self) -> int:
        """Number of stored parameters (0 for stateless layers)."""
        return 0

    def flops(self, input_shape: tuple[int, ...]) -> int:
        """Forward FLOPs for one invocation at ``input_shape``."""
        dims = self.gemm_dims(input_shape)
        if dims is not None:
            return dims.flops
        # Default for element-wise layers: one op per output element.
        return prod(self.output_shape(input_shape))

    def params(self) -> dict[str, int | float | str]:
        """Static parameters recorded into traces."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"


class Conv2d(Layer):
    """2-D convolution, square kernel, NCHW layout, bias optional."""

    kind = "conv2d"
    is_gemm = True

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__(name)
        if min(in_channels, out_channels, kernel, stride) <= 0 or padding < 0:
            raise ShapeError(f"invalid conv parameters for {name!r}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        gen = make_rng(rng)
        fan_in = in_channels * kernel * kernel
        self.weight = gen.standard_normal(
            (out_channels, in_channels, kernel, kernel)
        ) * np.sqrt(2.0 / fan_in)
        self.bias = np.zeros(out_channels) if bias else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected NCHW with C={self.in_channels}, got {x.shape}"
            )
        n = x.shape[0]
        oh, ow = conv_output_hw(x.shape[2], x.shape[3], self.kernel, self.stride, self.padding)
        cols = im2col(x, self.kernel, self.stride, self.padding)
        w = self.weight.reshape(self.out_channels, -1).T
        out = cols @ w
        if self.bias is not None:
            out += self.bias
        return out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        n, _, h, w = input_shape
        oh, ow = conv_output_hw(h, w, self.kernel, self.stride, self.padding)
        return (n, self.out_channels, oh, ow)

    def gemm_dims(self, input_shape: tuple[int, ...]) -> GemmDims:
        n, _, h, w = input_shape
        return conv2d_gemm_dims(
            n, self.in_channels, self.out_channels, h, w,
            self.kernel, self.stride, self.padding,
        )

    def weight_elements(self) -> int:
        n = self.weight.size
        if self.bias is not None:
            n += self.bias.size
        return n

    def params(self) -> dict[str, int | float | str]:
        return {
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "kernel": self.kernel,
            "stride": self.stride,
            "padding": self.padding,
        }


class Linear(Layer):
    """Fully-connected layer on ``(batch, features)`` inputs."""

    kind = "linear"
    is_gemm = True

    def __init__(
        self,
        name: str,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__(name)
        if min(in_features, out_features) <= 0:
            raise ShapeError(f"invalid linear parameters for {name!r}")
        self.in_features = in_features
        self.out_features = out_features
        gen = make_rng(rng)
        self.weight = gen.standard_normal((in_features, out_features)) * np.sqrt(
            2.0 / in_features
        )
        self.bias = np.zeros(out_features) if bias else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected (batch, {self.in_features}), got {x.shape}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (input_shape[0], self.out_features)

    def gemm_dims(self, input_shape: tuple[int, ...]) -> GemmDims:
        return linear_gemm_dims(input_shape[0], self.in_features, self.out_features)

    def weight_elements(self) -> int:
        n = self.weight.size
        if self.bias is not None:
            n += self.bias.size
        return n

    def params(self) -> dict[str, int | float | str]:
        return {"in_features": self.in_features, "out_features": self.out_features}


class BatchNorm2d(Layer):
    """Inference-mode batch norm: per-channel affine normalization."""

    kind = "batchnorm"

    def __init__(self, name: str, channels: int):
        super().__init__(name)
        if channels <= 0:
            raise ShapeError(f"invalid channel count for {name!r}")
        self.channels = channels
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.eps = 1e-5

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ShapeError(f"{self.name}: expected NCHW with C={self.channels}, got {x.shape}")
        scale = self.gamma / np.sqrt(self.running_var + self.eps)
        shift = self.beta - self.running_mean * scale
        return x * scale[None, :, None, None] + shift[None, :, None, None]

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(input_shape)

    def weight_elements(self) -> int:
        return 4 * self.channels

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 2 * prod(input_shape)

    def params(self) -> dict[str, int | float | str]:
        return {"channels": self.channels}


class ReLU(Layer):
    kind = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(input_shape)


class MaxPool2d(Layer):
    """Square-window max pooling (stride defaults to the window size)."""

    kind = "maxpool"

    def __init__(self, name: str, kernel: int, stride: int | None = None, padding: int = 0):
        super().__init__(name)
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel
        self.padding = padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NCHW input, got {x.shape}")
        n, c, h, w = x.shape
        oh, ow = conv_output_hw(h, w, self.kernel, self.stride, self.padding)
        if self.padding:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (self.padding,) * 2, (self.padding,) * 2),
                constant_values=-np.inf,
            )
        s = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, oh, ow, self.kernel, self.kernel),
            strides=(s[0], s[1], s[2] * self.stride, s[3] * self.stride, s[2], s[3]),
            writeable=False,
        )
        return windows.max(axis=(4, 5))

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        n, c, h, w = input_shape
        oh, ow = conv_output_hw(h, w, self.kernel, self.stride, self.padding)
        return (n, c, oh, ow)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return prod(self.output_shape(input_shape)) * self.kernel * self.kernel

    def params(self) -> dict[str, int | float | str]:
        return {"kernel": self.kernel, "stride": self.stride, "padding": self.padding}


class AvgPool2d(Layer):
    """Global average pooling: NCHW → (N, C)."""

    kind = "avgpool"

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NCHW input, got {x.shape}")
        return x.mean(axis=(2, 3))

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (input_shape[0], input_shape[1])

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return prod(input_shape)


class Softmax(Layer):
    kind = "softmax"

    def forward(self, x: np.ndarray) -> np.ndarray:
        z = x - x.max(axis=-1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=-1, keepdims=True)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(input_shape)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 4 * prod(input_shape)


class Flatten(Layer):
    kind = "flatten"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (input_shape[0], prod(input_shape[1:]))

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 0


class Add(Layer):
    """Element-wise residual addition (two-input layer)."""

    kind = "add"

    def forward(self, x: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:  # type: ignore[override]
        if y is None:
            raise ShapeError(f"{self.name}: Add needs two operands")
        if x.shape != y.shape:
            raise ShapeError(f"{self.name}: shape mismatch {x.shape} vs {y.shape}")
        return x + y

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(input_shape)


class Sequential:
    """An ordered chain of layers with shape-checked execution."""

    def __init__(self, layers: Sequence[Layer]):
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    __call__ = forward

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        shape = tuple(input_shape)
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def weight_elements(self) -> int:
        return sum(layer.weight_elements() for layer in self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)
