"""NSFlow reproduction: an end-to-end FPGA framework with scalable
dataflow architecture for Neuro-Symbolic AI (DAC 2025, arXiv:2504.19323).

Public API tour:

>>> from repro import NSFlow, build_workload
>>> design = NSFlow().compile(build_workload("mimonet"))
>>> design.config.geometry            # AdArray (H, W, N)  # doctest: +SKIP
>>> design.latency_ms                 # simulated latency  # doctest: +SKIP

Subpackages: :mod:`repro.vsa` (vector-symbolic algebra), :mod:`repro.nn`
(numpy NN substrate), :mod:`repro.workloads` (NVSA/MIMONet/LVRF/PrAE),
:mod:`repro.datasets` (synthetic RAVEN/I-RAVEN/PGM/CVR/SVRT-like tasks),
:mod:`repro.trace` / :mod:`repro.graph` / :mod:`repro.dse` (the frontend),
:mod:`repro.arch` (the backend simulator), :mod:`repro.baselines` and
:mod:`repro.characterize` (comparison devices), :mod:`repro.flow` (the
end-to-end framework).
"""

from .errors import NSFlowError
from .flow import NSFlow, CompiledDesign
from .dse import DesignConfig, DseEngine, TwoPhaseDSE
from .quant import MixedPrecisionConfig, MIXED_PRECISION_PRESETS, Precision
from .workloads import available_workloads, build_workload

__version__ = "1.0.0"

__all__ = [
    "NSFlow",
    "CompiledDesign",
    "DesignConfig",
    "TwoPhaseDSE",
    "DseEngine",
    "Precision",
    "MixedPrecisionConfig",
    "MIXED_PRECISION_PRESETS",
    "build_workload",
    "available_workloads",
    "NSFlowError",
    "__version__",
]
