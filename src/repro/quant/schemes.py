"""Precision vocabulary and symmetric (fake-)quantization.

The Table IV experiment quantizes the NVSA pipeline's weights, codebooks and
activations to FP16 / INT8 / INT4 (and the paper's mixed INT8-NN/INT4-symbolic
scheme) and measures end-to-end reasoning accuracy. We implement standard
symmetric per-tensor quantization: values are scaled so the largest magnitude
maps to the top of the integer grid, rounded to the grid, then de-quantized.
Accuracy degradation then emerges from real rounding noise rather than from a
hand-tuned accuracy table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import PrecisionError


class Precision(enum.Enum):
    """Numeric precisions supported by NSFlow compute units (Sec. IV-D)."""

    FP32 = "fp32"
    FP16 = "fp16"
    FP8 = "fp8"
    INT8 = "int8"
    INT4 = "int4"

    @property
    def bits(self) -> int:
        """Storage bits per element."""
        return _BITS[self]

    @property
    def bytes_per_element(self) -> float:
        """Storage bytes per element (INT4 packs two elements per byte)."""
        return self.bits / 8.0

    @property
    def is_integer(self) -> bool:
        return self in (Precision.INT8, Precision.INT4)

    @property
    def integer_levels(self) -> int:
        """Number of representable levels for integer grids."""
        if not self.is_integer:
            raise PrecisionError(f"{self.value} is not an integer precision")
        return 1 << self.bits

    @classmethod
    def parse(cls, name: "str | Precision") -> "Precision":
        """Parse a precision from its string name (case-insensitive)."""
        if isinstance(name, Precision):
            return name
        try:
            return cls(name.lower())
        except ValueError as exc:
            valid = ", ".join(p.value for p in cls)
            raise PrecisionError(f"unknown precision {name!r}; expected one of {valid}") from exc


_BITS = {
    Precision.FP32: 32,
    Precision.FP16: 16,
    Precision.FP8: 8,
    Precision.INT8: 8,
    Precision.INT4: 4,
}

#: Mantissa bits used by the FP8 rounding model (E4M3-style).
_FP8_MANTISSA_BITS = 3


@dataclass(frozen=True)
class QuantizedTensor:
    """A tensor stored on an integer grid together with its scale.

    ``values`` holds integers (as ``int32`` for headroom); ``scale`` maps the
    grid back to real values: ``real ≈ values * scale``.
    """

    values: np.ndarray
    scale: float
    precision: Precision

    def dequantize(self) -> np.ndarray:
        """Reconstruct the real-valued tensor."""
        return self.values.astype(np.float64) * self.scale

    @property
    def nbytes(self) -> int:
        """Storage bytes at the nominal precision.

        Sub-byte precisions pack: INT4 stores two elements per byte, so an
        odd element count rounds *up* to the next whole byte (``ceil``), the
        way a packed buffer is actually allocated. 3 INT4 elements are 2
        bytes, never 1.5.
        """
        return (self.values.size * self.precision.bits + 7) // 8


def _symmetric_scale(arr: np.ndarray, precision: Precision) -> float:
    qmax = (precision.integer_levels // 2) - 1
    peak = float(np.max(np.abs(arr))) if arr.size else 0.0
    if peak == 0.0:
        return 1.0
    return peak / qmax


def quantize_tensor(arr: np.ndarray, precision: Precision | str) -> QuantizedTensor:
    """Symmetric per-tensor quantization onto an integer grid.

    Only integer precisions are supported here; floating precisions do not
    need an explicit grid (see :func:`quantize_array` for the fake-quant
    path that handles every precision uniformly).
    """
    precision = Precision.parse(precision)
    if not precision.is_integer:
        raise PrecisionError(f"quantize_tensor needs an integer precision, got {precision.value}")
    arr = np.asarray(arr, dtype=np.float64)
    scale = _symmetric_scale(arr, precision)
    qmax = (precision.integer_levels // 2) - 1
    qmin = -(precision.integer_levels // 2)
    q = np.clip(np.rint(arr / scale), qmin, qmax).astype(np.int32)
    return QuantizedTensor(values=q, scale=scale, precision=precision)


def dequantize(qt: QuantizedTensor) -> np.ndarray:
    """Convenience wrapper for :meth:`QuantizedTensor.dequantize`."""
    return qt.dequantize()


def _round_float(arr: np.ndarray, precision: Precision) -> np.ndarray:
    if precision is Precision.FP32:
        return arr.astype(np.float32).astype(np.float64)
    if precision is Precision.FP16:
        return arr.astype(np.float16).astype(np.float64)
    if precision is Precision.FP8:
        # E4M3-style rounding model: keep _FP8_MANTISSA_BITS mantissa bits.
        out = np.zeros_like(arr, dtype=np.float64)
        nonzero = arr != 0
        vals = arr[nonzero]
        exp = np.floor(np.log2(np.abs(vals)))
        step = np.exp2(exp - _FP8_MANTISSA_BITS)
        out[nonzero] = np.rint(vals / step) * step
        return out
    raise PrecisionError(f"{precision.value} is not a float precision")


def quantize_array(arr: np.ndarray, precision: Precision | str) -> np.ndarray:
    """Fake-quantize: round ``arr`` to ``precision`` and return real values.

    This is the uniform entry point used by the Table IV pipeline: FP32 is
    the identity (modulo float32 rounding), FP16/FP8 round the mantissa,
    INT8/INT4 round onto a symmetric per-tensor integer grid.
    """
    precision = Precision.parse(precision)
    arr = np.asarray(arr, dtype=np.float64)
    if arr.size == 0:
        return arr.copy()
    if precision.is_integer:
        return quantize_tensor(arr, precision).dequantize()
    return _round_float(arr, precision)


def quantization_noise_floor(precision: Precision | str) -> float:
    """Relative RMS rounding noise expected for a unit-RMS tensor.

    For a symmetric b-bit grid spanning the data range, the classic result
    is ``step / sqrt(12)`` with ``step ≈ 2·peak / 2^b``. This is used by
    tests as a sanity band, not by the accuracy pipeline itself.
    """
    precision = Precision.parse(precision)
    if precision is Precision.FP32:
        return 2.0**-24
    if precision is Precision.FP16:
        return 2.0**-11
    if precision is Precision.FP8:
        return 2.0 ** -(_FP8_MANTISSA_BITS + 1)
    # Integer grids: assume ~4 sigma peak-to-rms ratio for Gaussian data.
    step = 2.0 * 4.0 / precision.integer_levels
    return step / np.sqrt(12.0)
