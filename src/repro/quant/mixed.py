"""Mixed-precision configurations and the model memory-footprint model.

Table IV reports, for the NVSA workload, reasoning accuracy and model memory
at FP32 / FP16 / INT8 / MP (INT8 for NN, INT4 for symbolic) / INT4. The
memory row follows directly from the component element counts and the bytes
per element of each precision; :func:`model_footprint_bytes` reproduces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..errors import PrecisionError
from .schemes import Precision


@dataclass(frozen=True)
class MixedPrecisionConfig:
    """Precision assignment for the two halves of an NSAI workload.

    ``neural`` applies to NN weights/activations, ``symbolic`` to VSA
    codebooks and vector operands. The paper's headline scheme is
    ``MixedPrecisionConfig(Precision.INT8, Precision.INT4)``.
    """

    neural: Precision
    symbolic: Precision
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.neural, Precision) or not isinstance(self.symbolic, Precision):
            raise PrecisionError("MixedPrecisionConfig fields must be Precision members")
        if not self.name:
            object.__setattr__(self, "name", f"{self.neural.value}/{self.symbolic.value}")

    @classmethod
    def uniform(cls, precision: Precision | str, name: str = "") -> "MixedPrecisionConfig":
        """Use one precision for both halves (the FP32/FP16/INT8/INT4 columns)."""
        p = Precision.parse(precision)
        return cls(neural=p, symbolic=p, name=name or p.value.upper())

    def precision_for(self, component: str) -> Precision:
        """Precision for a workload component tagged ``neural`` or ``symbolic``."""
        if component == "neural":
            return self.neural
        if component == "symbolic":
            return self.symbolic
        raise PrecisionError(f"unknown component {component!r}; expected 'neural' or 'symbolic'")


#: The five Table IV columns, in paper order.
MIXED_PRECISION_PRESETS: dict[str, MixedPrecisionConfig] = {
    "FP32": MixedPrecisionConfig.uniform(Precision.FP32, "FP32"),
    "FP16": MixedPrecisionConfig.uniform(Precision.FP16, "FP16"),
    "INT8": MixedPrecisionConfig.uniform(Precision.INT8, "INT8"),
    "MP": MixedPrecisionConfig(Precision.INT8, Precision.INT4, "MP"),
    "INT4": MixedPrecisionConfig.uniform(Precision.INT4, "INT4"),
}


def component_footprint_bytes(n_elements: int, precision: Precision) -> int:
    """Storage bytes for ``n_elements`` at ``precision`` (INT4 packs 2/byte).

    Packed storage is whole bytes: an odd INT4 element count rounds up
    (``ceil(n/2)``), matching how a packed buffer is allocated. The
    per-element *rate* stays fractional (``Precision.bytes_per_element``);
    only realized footprints are integral.
    """
    if n_elements < 0:
        raise PrecisionError(f"element count must be non-negative, got {n_elements}")
    return (n_elements * precision.bits + 7) // 8


def model_footprint_bytes(
    component_elements: Mapping[str, int],
    config: MixedPrecisionConfig,
) -> int:
    """Total model memory for a workload under a mixed-precision config.

    ``component_elements`` maps component tags (``neural`` / ``symbolic``)
    to element counts (weights + codebooks + resident activations). The
    Table IV "Memory" row for NVSA uses ~8 M total elements split so the
    paper's 32 MB (FP32) → 5.5 MB (MP) → 4 MB (INT4) progression follows
    from the byte widths alone. Each component is packed independently
    (per-component buffers), so the total is the sum of per-component
    ``ceil`` footprints — always a whole number of bytes.
    """
    total = 0
    for component, count in component_elements.items():
        precision = config.precision_for(component)
        total += component_footprint_bytes(count, precision)
    return total
