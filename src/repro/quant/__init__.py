"""Quantization substrate: precisions, quantizers, and mixed-precision configs.

NSFlow supports mixed precisions "ranging from FP16/8 to INT8/4 in different
components of the workload" (paper Sec. IV-D). This package provides:

* :class:`~repro.quant.schemes.Precision` — the precision vocabulary with
  per-element storage costs,
* symmetric fake-quantization (:func:`~repro.quant.schemes.quantize_array`)
  used by the Table IV accuracy study,
* :class:`~repro.quant.mixed.MixedPrecisionConfig` — the (NN precision,
  symbolic precision) pairs the frontend assigns to workload components,
* the model memory-footprint model behind Table IV's "Memory" row.
"""

from .schemes import (
    Precision,
    QuantizedTensor,
    dequantize,
    quantization_noise_floor,
    quantize_array,
    quantize_tensor,
)
from .mixed import (
    MixedPrecisionConfig,
    MIXED_PRECISION_PRESETS,
    component_footprint_bytes,
    model_footprint_bytes,
)

__all__ = [
    "Precision",
    "QuantizedTensor",
    "quantize_array",
    "quantize_tensor",
    "dequantize",
    "quantization_noise_floor",
    "MixedPrecisionConfig",
    "MIXED_PRECISION_PRESETS",
    "component_footprint_bytes",
    "model_footprint_bytes",
]
