"""Setup shim so legacy editable installs work offline.

The environment this reproduction targets has no network access and no
``wheel`` package, which PEP 660 editable installs require. ``setup.py``
lets ``pip install -e . --no-build-isolation`` fall back to the legacy
``develop`` path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
