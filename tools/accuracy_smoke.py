#!/usr/bin/env python
"""Accuracy-objective smoke gate (CI's perf-smoke lane).

Proves the functional-accuracy contract end to end with the real sweep
orchestrator:

1. cold-sweep ``prae`` across the INT8 and INT4 precision presets with
   ``--accuracy`` on: both scenarios must score, the scores must obey
   the quantization ladder (INT4 <= INT8), and the deployment-precision
   twin must make the trade-off *visible* (INT4 strictly below INT8 at
   the default problem set — the whole point of the fourth axis);
2. warm-sweep the identical grid after clearing the in-process memo:
   every scenario must be a cache hit, pricing zero fresh DSE
   evaluations and executing **zero** functional accuracy problems
   (``accuracy_cache_stats()``) — the scores ride the artifact store;
3. the warm scores must be bit-identical to the cold ones.

Any violated invariant exits non-zero.

Usage:
    PYTHONPATH=src python tools/accuracy_smoke.py [--workdir DIR]
        [--problems N]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
)

from repro.dse import accuracy_cache_stats, clear_accuracy_cache  # noqa: E402
from repro.flow import ArtifactStore, ScenarioGrid, run_sweep  # noqa: E402


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def scores(result) -> dict[str, float | None]:
    out = {}
    for outcome in result.ok_outcomes():
        acc = outcome.artifacts.report.accuracy
        if acc is None:
            fail(f"{outcome.spec.scenario_id} has no accuracy result")
        out[outcome.spec.scenario_id] = acc.value
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default=None,
                        help="cache directory (default: a temp dir)")
    parser.add_argument("--problems", type=int, default=16,
                        help="seeded problems per evaluation (default 16)")
    args = parser.parse_args()

    workdir = pathlib.Path(
        args.workdir or tempfile.mkdtemp(prefix="accuracy-smoke-")
    )
    grid = ScenarioGrid(
        workloads=("prae",),
        precisions=("INT8", "INT4"),
        accuracy=True,
        accuracy_problems=args.problems,
    )
    store = ArtifactStore(workdir / "cache")

    clear_accuracy_cache()
    cold = run_sweep(grid, store=store)
    if cold.n_errors:
        fail(f"cold sweep recorded {cold.n_errors} errors")
    if cold.n_compiled != 2:
        fail(f"cold sweep compiled {cold.n_compiled} scenarios, wanted 2")
    cold_scores = scores(cold)
    suffix = f"acc{args.problems}" if args.problems != 16 else "acc16"
    int8 = cold_scores[f"prae@u250/INT8/{suffix}"]
    int4 = cold_scores[f"prae@u250/INT4/{suffix}"]
    if int8 is None or int4 is None:
        fail(f"prae scenarios must score, got INT8={int8} INT4={int4}")
    if int4 > int8:
        fail(f"quantization ladder violated: INT4 {int4} > INT8 {int8}")
    if int4 >= int8:
        fail(
            f"no visible trade-off: INT4 {int4} == INT8 {int8} — the "
            "deployment-precision twin is not reaching the pipeline"
        )
    print(f"cold: INT8 {int8:.4f}, INT4 {int4:.4f} "
          f"({args.problems} problems)")

    clear_accuracy_cache()
    warm = run_sweep(grid, store=store)
    if warm.n_compiled != 0:
        fail(f"warm sweep re-priced {warm.n_compiled} scenarios")
    executed = accuracy_cache_stats()["executed"]
    if executed != 0:
        fail(f"warm sweep re-executed {executed} accuracy evaluations")
    warm_scores = scores(warm)
    if warm_scores != cold_scores:
        fail(f"warm scores drifted: {warm_scores} != {cold_scores}")
    print("warm: 2 cache hits, 0 fresh evaluations, "
          "0 accuracy executions, scores bit-identical")
    print("OK: accuracy smoke passed")


if __name__ == "__main__":
    main()
