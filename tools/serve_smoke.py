#!/usr/bin/env python
"""Serve crash-recovery smoke gate.

Runs the ``repro serve`` durability guarantee end to end with the real
CLI on both sides of the wire (CI's ``serve-smoke`` job):

1. boot a server subprocess with an injected per-compile delay and a
   short claim lease;
2. submit a small synth sweep through ``repro submit --no-wait``;
3. SIGKILL the server the moment the first scenario lands in the
   server-side job ledger — mid-grid, possibly mid-pricing, the worst
   crash window;
4. restart the server on the same cache dir and worker id, resubmit the
   identical grid with ``repro submit``: the job resumes from the
   surviving ledger rows (stale claims re-issued, completed scenarios
   never re-priced) and runs to completion;
5. drain the server, then run a local ``repro sweep`` of the same grid
   into a separate cache: the merged canonical ledger and report must
   be **byte-identical**, with zero double-priced scenarios and zero
   open claims.

Any violated invariant exits non-zero.

Usage:
    PYTHONPATH=src python tools/serve_smoke.py [--seeds 0-5]
        [--delay 0.5] [--workdir DIR]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
)

from repro.flow.client import ServeClient  # noqa: E402
from repro.flow.ledger import RunLedger, merge_ledgers  # noqa: E402

WORKER_ID = "serve-smoke"
LEASE_S = 1.0


def _check(ok: bool, what: str) -> bool:
    print(("PASS" if ok else "FAIL") + f"  {what}")
    return ok


def _repro(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro", *args]


def _spawn_server(cache: pathlib.Path, *extra: str) -> tuple[
        subprocess.Popen, ServeClient]:
    proc = subprocess.Popen(
        _repro("serve", "--port", "0", "--cache-dir", str(cache),
               "--worker-id", WORKER_ID, "--lease-timeout", str(LEASE_S),
               *extra),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    ready = proc.stdout.readline()
    m = re.search(r"http://[\d.]+:(\d+)", ready)
    if m is None:
        proc.kill()
        raise SystemExit(f"server never became ready: {ready!r}")
    return proc, ServeClient(f"http://127.0.0.1:{m.group(1)}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", default="0-5",
                        help="synth seed range for the grid (default: 0-5)")
    parser.add_argument("--delay", type=float, default=0.5,
                        help="injected per-compile delay in seconds; the "
                             "SIGKILL window (default: 0.5)")
    parser.add_argument("--workdir", type=pathlib.Path, default=None,
                        help="working directory (default: a fresh tempdir)")
    args = parser.parse_args(argv)

    workdir = args.workdir or pathlib.Path(tempfile.mkdtemp(
        prefix="nsflow-serve-smoke-"
    ))
    workdir.mkdir(parents=True, exist_ok=True)
    cache = workdir / "serve-cache"
    grid_flags = ("--workloads", f"synth:{args.seeds}")
    print(f"workdir: {workdir}")
    print(f"grid: synth:{args.seeds}, compile delay {args.delay}s, "
          f"SIGKILL after the first ledger row")

    # 1-2. boot with the delay armed, submit without waiting.
    proc, client = _spawn_server(
        cache, "--faults", f"sweep.compile:delay={args.delay}x*",
    )
    ok = True
    try:
        submit = subprocess.run(
            _repro("submit", "--server", client.base_url, *grid_flags,
                   "--no-wait"),
            capture_output=True, text=True, timeout=120,
        )
        ok &= _check(submit.returncode == 0,
                     "repro submit --no-wait accepted the grid"
                     + (f": {submit.stderr.strip()}" if submit.returncode
                        else ""))
        m = re.search(r"Submitted job (\w+) \((\d+) scenarios\)",
                      submit.stdout)
        if m is None:
            print(f"FAIL  could not parse job id from: {submit.stdout!r}")
            return 1
        job_id, total = m.group(1), int(m.group(2))

        # 3. SIGKILL as soon as one scenario has durably landed.
        deadline = time.monotonic() + 120
        while not client.job(job_id)["rows"]:
            if time.monotonic() > deadline:
                print("FAIL  no scenario finished before the kill window")
                return 1
            time.sleep(0.05)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()

    ledger_path = cache / "jobs" / f"{job_id}.jsonl"
    survivors = RunLedger(ledger_path).records()
    ok &= _check(1 <= len(survivors) < total,
                 f"server died mid-grid ({len(survivors)}/{total} rows "
                 f"survived, {len(RunLedger(ledger_path).open_claims())} "
                 "claims open)")

    # 4. restart on the same cache + worker id, resubmit and wait.
    proc, client = _spawn_server(cache)
    try:
        submit = subprocess.run(
            _repro("submit", "--server", client.base_url, *grid_flags),
            capture_output=True, text=True, timeout=300,
        )
        ok &= _check(submit.returncode == 0,
                     "resubmitted job ran to completion"
                     + (f": {submit.stderr.strip()}\n{submit.stdout}"
                        if submit.returncode else ""))
        ok &= _check(f"Submitted job {job_id}" in submit.stdout,
                     "resubmission resumed the same job id")
        ok &= _check(re.search(r"\bresumed\b", submit.stdout) is not None,
                     "surviving rows were resumed, not re-priced")
        client.drain()
    finally:
        try:
            drained = proc.wait(timeout=120) == 0
        except subprocess.TimeoutExpired:
            proc.kill()
            drained = False
    ok &= _check(drained, "restarted server drained cleanly")

    # 5. local golden over the same grid, then byte-compare.
    golden_ledger = workdir / "local" / "ledger.jsonl"
    local = subprocess.run(
        _repro("sweep", *grid_flags,
               "--cache-dir", str(workdir / "local" / "cache"),
               "--ledger", str(golden_ledger)),
        capture_output=True, text=True, timeout=300,
    )
    ok &= _check(local.returncode == 0,
                 "local repro sweep of the same grid succeeded"
                 + (f": {local.stderr.strip()}" if local.returncode else ""))

    served = merge_ledgers([ledger_path])
    golden = merge_ledgers([golden_ledger])
    ok &= _check(served.double_priced == [],
                 f"zero double-priced scenarios "
                 f"(got {len(served.double_priced)})")
    ok &= _check(served.open_claims == [], "zero open claims after resume")
    ok &= _check(
        served.canonical_ledger_text() == golden.canonical_ledger_text(),
        "served canonical ledger byte-identical to local sweep",
    )
    ok &= _check(served.report_text() == golden.report_text(),
                 "served report byte-identical to local sweep")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
