#!/usr/bin/env python3
"""Regenerate the golden report fixtures under tests/goldens/.

The goldens pin the *entire* numeric surface of a compiled scenario —
Phase I/II results, the full Pareto frontier, resource estimate, and
scheduled latency — as the exact ``report.json`` document the artifact
store persists. `tests/flow/test_goldens.py` recompiles each scenario
and diffs against these files byte-for-semantics (parsed JSON
equality), so any change to the cost models, the DSE, or the report
schema shows up as a reviewable fixture diff instead of a silent drift.

When a change *intentionally* alters results (a new backend version, a
model fix), regenerate and commit the diff:

    PYTHONPATH=src python tools/regen_goldens.py

This is the single source of truth for which scenarios are pinned
(:data:`GOLDENS`); the test module imports it, so the tool and the test
can never disagree about the fixture set.
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.flow.artifacts import _report_doc  # noqa: E402
from repro.flow.nsflow import NSFlow  # noqa: E402
from repro.quant import MIXED_PRECISION_PRESETS  # noqa: E402
from repro.workloads import build_workload  # noqa: E402

GOLDEN_DIR = REPO_ROOT / "tests" / "goldens"

#: Small synth family: fast to compile, non-trivial frontier.
_SYNTH_SMALL = dict(n_ops=10, depth=4, vector_dim=64, blocks=2, gemm_scale=16)

#: (fixture name, workload name, config overrides, backend, search).
#: One registry workload and two synth seeds, each under both backends.
#: max_pes is fixed (not device-derived) so goldens are device-budget
#: independent and the frontier stays small enough to review. The two
#: ``multifidelity`` entries pin the pruned search's output as its own
#: fixture files — which must be byte-identical to their exhaustive
#: counterparts (see MF_GOLDEN_PAIRS and the goldens test).
GOLDENS: tuple[tuple[str, str, dict, str, str], ...] = (
    ("prae-analytic", "prae", {}, "analytic", "exhaustive"),
    ("prae-schedule", "prae", {}, "schedule", "exhaustive"),
    ("synth101-analytic", "synth", dict(seed=101, **_SYNTH_SMALL),
     "analytic", "exhaustive"),
    ("synth101-schedule", "synth", dict(seed=101, **_SYNTH_SMALL),
     "schedule", "exhaustive"),
    ("synth202-analytic", "synth", dict(seed=202, **_SYNTH_SMALL),
     "analytic", "exhaustive"),
    ("synth202-schedule", "synth", dict(seed=202, **_SYNTH_SMALL),
     "schedule", "exhaustive"),
    ("prae-schedule-mf", "prae", {}, "schedule", "multifidelity"),
    ("synth101-schedule-mf", "synth", dict(seed=101, **_SYNTH_SMALL),
     "schedule", "multifidelity"),
)

#: (multi-fidelity fixture, exhaustive fixture) pairs whose report.json
#: files must be identical — the on-disk form of the search-equivalence
#: guarantee, and why `search` never joins the artifact-cache key.
MF_GOLDEN_PAIRS: tuple[tuple[str, str], ...] = (
    ("prae-schedule-mf", "prae-schedule"),
    ("synth101-schedule-mf", "synth101-schedule"),
)

GOLDEN_MAX_PES = 256


def golden_doc(workload: str, overrides: dict, backend: str,
               search: str = "exhaustive") -> dict:
    """Compile one golden scenario and return its report.json document."""
    wl = build_workload(workload, **overrides)
    nsf = NSFlow(
        precision=MIXED_PRECISION_PRESETS["MP"],
        max_pes=GOLDEN_MAX_PES,
        backend=backend,
        search=search,
    )
    return _report_doc(nsf.compile(wl))


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, workload, overrides, backend, search in GOLDENS:
        path = GOLDEN_DIR / f"{name}.json"
        doc = golden_doc(workload, overrides, backend, search)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
