#!/usr/bin/env python3
"""Check documented CLI invocations against the real argparse surface.

Walks every fenced ``sh``/``bash`` code block in README.md and docs/*.md,
extracts each command line that invokes ``python -m repro ...`` (shell
line continuations are joined, env-var prefixes stripped), and *parses*
it with the CLI's actual ``build_parser()`` — without executing the
command. A flag rename, a removed subcommand, or a workload/device
choice that no longer exists makes this script (and the CI docs job)
fail, so the CLI documentation cannot silently rot.

Usage:  PYTHONPATH=src python tools/check_cli_docs.py [files...]
Exit codes: 0 = every documented invocation parses; 1 = failures
(listed on stderr); 2 = no invocations found (suspicious — the docs or
this extractor broke).
"""

from __future__ import annotations

import contextlib
import io
import pathlib
import re
import shlex
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.flow.cli import build_parser  # noqa: E402

FENCE_RE = re.compile(r"^```(\w*)\s*$")
MARKER = "-m repro"


def default_doc_files() -> list[pathlib.Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.is_file()]


def shell_blocks(text: str) -> list[list[str]]:
    """Fenced ``sh``/``bash`` blocks as lists of logical lines."""
    blocks: list[list[str]] = []
    lines: list[str] | None = None
    for raw in text.splitlines():
        m = FENCE_RE.match(raw.strip())
        if m:
            if lines is not None:          # closing fence
                blocks.append(lines)
                lines = None
            elif m.group(1) in ("sh", "bash", "shell", "console"):
                lines = []
            continue
        if lines is not None:
            lines.append(raw)
    return blocks


def logical_commands(block: list[str]) -> list[str]:
    """Join backslash continuations; drop comments and blank lines."""
    commands: list[str] = []
    pending = ""
    for raw in block:
        line = raw.rstrip()
        if pending:
            line = pending + " " + line.lstrip()
            pending = ""
        if line.endswith("\\"):
            pending = line[:-1].rstrip()
            continue
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            commands.append(stripped)
    if pending:
        commands.append(pending.strip())
    return commands


def repro_argv(command: str) -> list[str] | None:
    """The argv after ``-m repro``, or None when this is not a repro call."""
    if MARKER not in command:
        return None
    # Docs show prompts like `$ PYTHONPATH=src python -m repro ...`.
    tail = command.split(MARKER, 1)[1]
    try:
        return shlex.split(tail)
    except ValueError as exc:
        raise SystemExit(f"unparseable shell line in docs: {command!r}: {exc}")


def check_file(path: pathlib.Path, parser) -> tuple[int, list[str]]:
    checked = 0
    failures: list[str] = []
    for block in shell_blocks(path.read_text()):
        for command in logical_commands(block):
            argv = repro_argv(command)
            if argv is None:
                continue
            checked += 1
            err = io.StringIO()
            try:
                with contextlib.redirect_stderr(err):
                    parser.parse_args(argv)
            except SystemExit as exc:
                if exc.code not in (0, None):
                    failures.append(
                        f"{path.relative_to(REPO_ROOT)}: `{command}`\n"
                        f"    {err.getvalue().strip().splitlines()[-1]}"
                    )
    return checked, failures


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    files = [pathlib.Path(a) for a in args] or default_doc_files()
    parser = build_parser()
    total = 0
    failures: list[str] = []
    for path in files:
        checked, bad = check_file(path, parser)
        total += checked
        failures.extend(bad)
        print(f"{path.relative_to(REPO_ROOT)}: "
              f"{checked} documented invocation(s) checked")
    if failures:
        print(f"\n{len(failures)} documented invocation(s) do not parse:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if total == 0:
        print("no `python -m repro` invocations found in the docs — "
              "either the docs or this checker regressed", file=sys.stderr)
        return 2
    print(f"OK: all {total} documented CLI invocations parse")
    return 0


if __name__ == "__main__":
    sys.exit(main())
