#!/usr/bin/env python
"""Chaos smoke gate: a multi-worker sweep under a seeded fault schedule.

Runs the fault-tolerance headline guarantee end to end, with no test
framework in the loop (CI's ``chaos-smoke`` job):

1. serial golden — one fault-free in-process sweep over a synth seed
   grid;
2. four concurrent worker *processes* sharing ONE ledger + artifact
   store via the claim protocol, each armed with a different seeded
   fault schedule (``REPRO_FAULTS``): a SIGKILLed DSE pool worker
   (supervised rebuild), an injected fsync failure (absorbed by the
   retry policy), and an injected compile stall that blows the
   ``--scenario-timeout`` budget (recorded as a retryable error row);
3. a cleanup ``--resume`` pass with a corrupt-read fault armed: one
   cached artifact entry fails the read-time audit, is quarantined to
   ``<store>/quarantine/``, and is recompiled as a *recovered* row;
4. the shared ledger is merged: the canonical ledger and report must be
   **byte-identical** to the serial golden's, with zero double-priced
   scenarios and zero open claims, and every injected fault kind must
   be visible in the shared ``fires.log`` audit trail.

Any violated invariant exits non-zero.

Usage:
    PYTHONPATH=src python tools/chaos_smoke.py [--seeds 0-199]
        [--workers 4] [--workdir DIR] [--check-only]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
)

from repro.faults import FAULTS_ENV, FAULTS_STATE_ENV  # noqa: E402
from repro.flow import (  # noqa: E402
    ArtifactStore,
    RunLedger,
    ScenarioGrid,
    merge_ledgers,
    run_sweep,
)

#: Tiny synth family — milliseconds per scenario.
SYNTH_OVR = (("n_ops", 8), ("vector_dim", 64), ("blocks", 2),
             ("gemm_scale", 16))

#: Per-worker fault schedules. Every kind the chaos contract demands:
#: a pool-worker SIGKILL, an fsync failure, a compile stall that blows
#: the scenario timeout (the ``!once`` rules are global one-shots via
#: the shared state dir, so supervision rebuilds cannot re-trigger
#: them), and — in the cleanup pass — a corrupted artifact read.
WAVE_FAULTS = {
    1: "dse.worker:kill@1!once",
    2: "ledger.append.fsync:raise@2",
    3: "sweep.compile:delay=2.5@3!once",
    4: "",
}
CLEANUP_FAULTS = "artifacts.load.read:corrupt@2"

#: Fault kinds that must appear in the shared fires.log audit trail.
REQUIRED_FIRES = (
    "dse.worker:kill",
    "ledger.append.fsync:raise",
    "sweep.compile:delay",
    "artifacts.load.read:corrupt",
)


def synth_grid(seeds: str) -> ScenarioGrid:
    return ScenarioGrid(workloads=(f"synth:{seeds}",), max_pes=(256,),
                        overrides=SYNTH_OVR)


def _worker_main(args: argparse.Namespace) -> int:
    """Subprocess entry: one sweep over the shared ledger + store.

    The fault schedule arrives via ``REPRO_FAULTS`` in the environment
    (set by the driver), exactly how a user would arm one; a JSON
    summary of the result counters is dropped next to the cache so the
    driver can assert each fault was really absorbed."""
    result = run_sweep(
        synth_grid(args.seeds),
        store=ArtifactStore(args.cache / "store"),
        ledger=args.cache / "ledger.jsonl",
        jobs=args.jobs,
        worker=args.worker_id or None,
        lease_timeout_s=args.lease,
        scenario_timeout_s=args.scenario_timeout or None,
        resume=args.resume,
    )
    tag = args.worker_id or "cleanup"
    (args.cache / f"summary-{tag}.json").write_text(json.dumps({
        "n_scenarios": result.n_scenarios,
        "n_compiled": result.n_compiled,
        "n_cached": result.n_cached,
        "n_errors": result.n_errors,
        "n_deferred": result.n_deferred,
        "n_timeouts": result.n_timeouts,
        "n_recovered": result.n_recovered,
        "io_retries": result.io_retries,
        "heartbeat_lost": result.heartbeat_lost,
        "fault_fires": result.fault_fires,
        "store_corrupt": result.store_stats.corrupt,
        "store_quarantined": result.store_stats.quarantined,
    }, indent=2, sort_keys=True))
    return 0


def _spawn(workdir: pathlib.Path, args: argparse.Namespace, *,
           worker_id: str = "", faults: str = "", jobs: int = 1,
           scenario_timeout: float = 0.0,
           resume: bool = False) -> subprocess.Popen:
    env = dict(os.environ)
    env.pop(FAULTS_ENV, None)
    if faults:
        env[FAULTS_ENV] = faults
    env[FAULTS_STATE_ENV] = str(workdir / "fault-state")
    cmd = [
        sys.executable, os.path.abspath(__file__), "--role", "worker",
        "--cache", str(workdir / "shared"), "--seeds", args.seeds,
        "--worker-id", worker_id, "--jobs", str(jobs),
        "--scenario-timeout", str(scenario_timeout),
    ]
    if resume:
        cmd.append("--resume")
    return subprocess.Popen(
        cmd, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )


def _check(ok: bool, what: str) -> bool:
    print(("PASS" if ok else "FAIL") + f"  {what}")
    return ok


def _summary(workdir: pathlib.Path, tag: str) -> dict:
    path = workdir / "shared" / f"summary-{tag}.json"
    return json.loads(path.read_text()) if path.is_file() else {}


def _driver_main(args: argparse.Namespace) -> int:
    workdir = args.workdir or pathlib.Path(tempfile.mkdtemp(
        prefix="nsflow-chaos-smoke-"
    ))
    workdir.mkdir(parents=True, exist_ok=True)
    os.environ.pop(FAULTS_ENV, None)   # the golden must stay fault-free
    n = args.workers
    grid_size = len(synth_grid(args.seeds).expand())
    print(f"workdir: {workdir}")
    print(f"grid: synth:{args.seeds} ({grid_size} scenarios), "
          f"{n} workers sharing one ledger under fault schedules:")
    for i in range(1, n + 1):
        spec = WAVE_FAULTS.get(i, "")
        print(f"  worker {i}: {spec or '(none)'}")
    print(f"  cleanup: {CLEANUP_FAULTS} (resume pass)")

    # 1. serial golden.
    t0 = time.monotonic()
    golden_ledger = RunLedger(workdir / "golden" / "ledger.jsonl")
    golden_sweep = run_sweep(
        synth_grid(args.seeds),
        store=ArtifactStore(workdir / "golden" / "store"),
        ledger=golden_ledger,
    )
    golden = merge_ledgers([golden_ledger])
    print(f"golden: {golden_sweep.n_compiled} compiled "
          f"in {time.monotonic() - t0:.1f} s")

    # 2. the chaos wave: n workers, one shared ledger, faults armed.
    t0 = time.monotonic()
    procs = [
        _spawn(
            workdir, args, worker_id=f"chaos-w{i}",
            faults=WAVE_FAULTS.get(i, ""),
            jobs=(2 if "dse.worker" in WAVE_FAULTS.get(i, "") else 1),
            scenario_timeout=(
                0.8 if "sweep.compile" in WAVE_FAULTS.get(i, "") else 0.0
            ),
        )
        for i in range(1, n + 1)
    ]
    errs = [p.communicate(timeout=900)[1] for p in procs]
    ok = True
    for i, (p, err) in enumerate(zip(procs, errs), start=1):
        ok &= _check(p.returncode == 0,
                     f"worker {i} exited cleanly"
                     + (f": {err.strip()}" if p.returncode else ""))
    print(f"chaos wave done in {time.monotonic() - t0:.1f} s")

    # 3. cleanup resume pass with the corrupt-read fault armed: retries
    # any timeout-errored rows and recovers the quarantined entry.
    cleanup = _spawn(workdir, args, faults=CLEANUP_FAULTS, resume=True)
    _, err = cleanup.communicate(timeout=900)
    ok &= _check(cleanup.returncode == 0,
                 "cleanup resume pass exited cleanly"
                 + (f": {err.strip()}" if cleanup.returncode else ""))

    # 4. every injected fault kind really fired (and was survived).
    summaries = {i: _summary(workdir, f"chaos-w{i}")
                 for i in range(1, n + 1)}
    summaries["cleanup"] = _summary(workdir, "cleanup")
    fires_log = workdir / "fault-state" / "fires.log"
    fired = set()
    if fires_log.is_file():
        for line in fires_log.read_text().splitlines():
            point, action, _pid = line.rsplit(":", 2)
            fired.add(f"{point}:{action}")
    for kind in REQUIRED_FIRES:
        ok &= _check(kind in fired, f"fault fired: {kind}")
    ok &= _check(sum(s.get("n_errors", 0) for s in summaries.values()) >= 1
                 and sum(s.get("n_timeouts", 0)
                         for s in summaries.values()) >= 1,
                 "scenario timeout recorded as a retryable error row")
    ok &= _check(any(s.get("io_retries", 0) >= 1
                     for s in summaries.values()),
                 "transient fsync failure absorbed by the retry policy")
    ok &= _check(summaries["cleanup"].get("n_recovered", 0) >= 1
                 and summaries["cleanup"].get("store_quarantined", 0) >= 1,
                 "corrupt artifact entry quarantined and recovered")
    store = ArtifactStore(workdir / "shared" / "store")
    ok &= _check(len(store.quarantined_keys()) >= 1,
                 "quarantine directory holds the corrupt entry's evidence")

    # 5. merge: exactly-once accounting must have survived the faults.
    merged = merge_ledgers([RunLedger(workdir / "shared" / "ledger.jsonl")])
    ok &= _check(merged.double_priced == [],
                 f"zero double-priced scenarios "
                 f"(got {len(merged.double_priced)})")
    ok &= _check(merged.open_claims == [], "zero open claims after merge")
    ok &= _check(
        len(merged.rows) == grid_size
        and all(r.status == "ok" for r in merged.rows),
        f"all {grid_size} scenarios priced ok",
    )
    ok &= _check(
        merged.canonical_ledger_text() == golden.canonical_ledger_text(),
        "merged canonical ledger byte-identical to the fault-free serial",
    )
    ok &= _check(merged.report_text() == golden.report_text(),
                 "merged report byte-identical to the fault-free serial")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--role", choices=("driver", "worker"),
                        default="driver", help=argparse.SUPPRESS)
    parser.add_argument("--seeds", default="0-199",
                        help="synth seed range (default: 0-199)")
    parser.add_argument("--workers", type=int, default=4,
                        help="concurrent worker processes sharing the ledger")
    parser.add_argument("--workdir", type=pathlib.Path, default=None,
                        help="working directory (default: a fresh tempdir)")
    parser.add_argument("--check-only", action="store_true",
                        help="CI mode: same invariants on a smaller grid "
                             "(synth:0-79)")
    # worker-role plumbing
    parser.add_argument("--cache", type=pathlib.Path, help=argparse.SUPPRESS)
    parser.add_argument("--worker-id", dest="worker_id", default="",
                        help=argparse.SUPPRESS)
    parser.add_argument("--jobs", type=int, default=1,
                        help=argparse.SUPPRESS)
    parser.add_argument("--scenario-timeout", dest="scenario_timeout",
                        type=float, default=0.0, help=argparse.SUPPRESS)
    parser.add_argument("--resume", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--lease", type=float, default=300.0,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.check_only and args.seeds == "0-199":
        args.seeds = "0-79"
    if args.role == "worker":
        return _worker_main(args)
    return _driver_main(args)


if __name__ == "__main__":
    sys.exit(main())
