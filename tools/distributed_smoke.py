#!/usr/bin/env python
"""Distributed-sweep crash-injection smoke gate.

Runs the headline distributed-sweep guarantee end to end, with no test
framework in the loop (CI's ``distributed-smoke`` job):

1. serial golden — one in-process sweep over a synth seed grid;
2. N concurrent worker *processes*, each compiling its ``--shard i/N``
   slice into a private ledger + artifact store; worker 1 SIGKILLs
   itself immediately after durably appending its Nth claim record
   (claimed, never priced — the worst crash window);
3. the victim's shard is re-run under a fresh worker id with a short
   lease, so the dead worker's stale claims are re-issued;
4. the N shard ledgers are merged: the canonical ledger and report must
   be **byte-identical** to the serial golden's, with zero
   double-priced scenarios and zero open claims, and the folded
   artifact store must hold every entry with ledger-verified digests.

Any violated invariant exits non-zero.

Usage:
    PYTHONPATH=src python tools/distributed_smoke.py [--seeds 0-119]
        [--workers 4] [--kill-after 3] [--workdir DIR]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
)

from repro.flow import (  # noqa: E402
    ArtifactStore,
    RunLedger,
    ScenarioGrid,
    fold_stores,
    merge_ledgers,
    run_sweep,
    shard_filter,
)

#: Tiny synth family — milliseconds per scenario.
SYNTH_OVR = (("n_ops", 8), ("vector_dim", 64), ("blocks", 2),
             ("gemm_scale", 16))


def synth_grid(seeds: str) -> ScenarioGrid:
    return ScenarioGrid(workloads=(f"synth:{seeds}",), max_pes=(256,),
                        overrides=SYNTH_OVR)


def _worker_main(args: argparse.Namespace) -> int:
    """Subprocess entry: one sharded sweep, optionally self-SIGKILLed
    right after the ``--kill-after``\\ th claim record hits the disk."""
    ledger = RunLedger(args.cache / "ledger.jsonl")
    if args.kill_after >= 0:
        seen = [0]
        orig = RunLedger._append_doc

        def kill_after_nth_claim(self, doc):
            orig(self, doc)
            if doc.get("kind") == "claim":
                seen[0] += 1
                if seen[0] >= args.kill_after:
                    os.kill(os.getpid(), signal.SIGKILL)

        RunLedger._append_doc = kill_after_nth_claim
    result = run_sweep(
        synth_grid(args.seeds), store=ArtifactStore(args.cache / "store"),
        ledger=ledger, shard=args.shard, worker=args.worker_id,
        lease_timeout_s=args.lease,
    )
    return 0 if result.n_errors == 0 else 1


def _spawn(workdir: pathlib.Path, args: argparse.Namespace, i: int, *,
           worker_id: str, lease: float = 300.0,
           kill_after: int = -1) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, os.path.abspath(__file__), "--role", "worker",
            "--cache", str(workdir / f"shard{i}"),
            "--shard", f"{i}/{args.workers}", "--seeds", args.seeds,
            "--worker-id", worker_id, "--lease", str(lease),
            "--kill-after", str(kill_after),
        ],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )


def _check(ok: bool, what: str) -> bool:
    print(("PASS" if ok else "FAIL") + f"  {what}")
    return ok


def _driver_main(args: argparse.Namespace) -> int:
    workdir = args.workdir or pathlib.Path(tempfile.mkdtemp(
        prefix="nsflow-distributed-smoke-"
    ))
    workdir.mkdir(parents=True, exist_ok=True)
    n = args.workers
    print(f"workdir: {workdir}")
    print(f"grid: synth:{args.seeds} x {n} shards, "
          f"SIGKILL worker 1 after claim #{args.kill_after}")

    victim_slice = shard_filter(synth_grid(args.seeds).expand(),
                                (1, n))
    if args.kill_after >= 0 and len(victim_slice) <= args.kill_after:
        print(f"error: shard 1/{n} holds only {len(victim_slice)} "
              f"scenarios; lower --kill-after or widen --seeds",
              file=sys.stderr)
        return 2

    # 1. serial golden.
    t0 = time.monotonic()
    serial_ledger = RunLedger(workdir / "serial" / "ledger.jsonl")
    serial = run_sweep(synth_grid(args.seeds),
                       store=ArtifactStore(workdir / "serial" / "store"),
                       ledger=serial_ledger)
    golden = merge_ledgers([serial_ledger])
    print(f"serial: {serial.n_compiled} compiled "
          f"in {time.monotonic() - t0:.1f} s")

    # 2. N concurrent sharded workers, one with the fault armed.
    procs = [
        _spawn(workdir, args, i, worker_id=f"smoke-w{i}",
               kill_after=(args.kill_after if i == 1 else -1))
        for i in range(1, n + 1)
    ]
    errs = [p.communicate(timeout=900)[1] for p in procs]
    ok = True
    if args.kill_after >= 0:
        ok &= _check(procs[0].returncode == -signal.SIGKILL,
                     f"worker 1 died by SIGKILL (rc={procs[0].returncode})")
    for i, (p, err) in enumerate(zip(procs, errs), start=1):
        if i == 1 and args.kill_after >= 0:
            continue
        ok &= _check(p.returncode == 0,
                     f"worker {i} exited cleanly"
                     + (f": {err.strip()}" if p.returncode else ""))

    # 3. re-issue the victim's claimed-but-unpriced work.
    if args.kill_after >= 0:
        victim = RunLedger(workdir / "shard1" / "ledger.jsonl")
        ok &= _check(bool(victim.open_claims()),
                     "victim left open claims behind")
        time.sleep(0.6)
        rerun = _spawn(workdir, args, 1, worker_id="smoke-w1b", lease=0.5)
        _, err = rerun.communicate(timeout=900)
        ok &= _check(rerun.returncode == 0,
                     "victim shard re-run exited cleanly"
                     + (f": {err.strip()}" if rerun.returncode else ""))
        ok &= _check(any(r.reissued for r in victim.records()),
                     "stale claims were re-issued")

    # 4. merge and compare against the golden.
    merged = merge_ledgers([
        RunLedger(workdir / f"shard{i}" / "ledger.jsonl")
        for i in range(1, n + 1)
    ])
    ok &= _check(merged.double_priced == [],
                 f"zero double-priced scenarios "
                 f"(got {len(merged.double_priced)})")
    ok &= _check(merged.open_claims == [], "zero open claims after merge")
    ok &= _check(
        merged.canonical_ledger_text() == golden.canonical_ledger_text(),
        "merged canonical ledger byte-identical to serial",
    )
    ok &= _check(merged.report_text() == golden.report_text(),
                 "merged report byte-identical to serial")
    stats = fold_stores(
        [workdir / f"shard{i}" / "store" for i in range(1, n + 1)],
        workdir / "merged-store",
        expected={r.key: r.artifact_digest for r in merged.rows},
    )
    ok &= _check(stats.missing == () and stats.copied == len(merged.rows),
                 f"store fold complete ({stats.copied} entries, "
                 f"{len(stats.missing)} missing)")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--role", choices=("driver", "worker"),
                        default="driver", help=argparse.SUPPRESS)
    parser.add_argument("--seeds", default="0-119",
                        help="synth seed range (default: 0-119)")
    parser.add_argument("--workers", type=int, default=4,
                        help="concurrent sharded worker processes")
    parser.add_argument("--kill-after", type=int, default=3,
                        dest="kill_after",
                        help="SIGKILL worker 1 after its Nth claim "
                             "(-1 disables the fault)")
    parser.add_argument("--workdir", type=pathlib.Path, default=None,
                        help="working directory (default: a fresh tempdir)")
    # worker-role plumbing
    parser.add_argument("--cache", type=pathlib.Path, help=argparse.SUPPRESS)
    parser.add_argument("--shard", help=argparse.SUPPRESS)
    parser.add_argument("--worker-id", dest="worker_id",
                        help=argparse.SUPPRESS)
    parser.add_argument("--lease", type=float, default=300.0,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.role == "worker":
        return _worker_main(args)
    return _driver_main(args)


if __name__ == "__main__":
    sys.exit(main())
